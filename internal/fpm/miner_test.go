package fpm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func smallTxDB(t testing.TB) *TxDB {
	t.Helper()
	d := smallDataset(t)
	// Two outcome classes, alternating.
	classes := make([]uint8, d.NumRows())
	for i := range classes {
		classes[i] = uint8(i % 2)
	}
	db, err := NewTxDB(d, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewTxDBValidation(t *testing.T) {
	d := smallDataset(t)
	classes := make([]uint8, d.NumRows())
	if _, err := NewTxDB(d, classes[:2], 2); err == nil {
		t.Error("mismatched class slice accepted")
	}
	if _, err := NewTxDB(d, classes, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewTxDB(d, classes, MaxClasses+1); err == nil {
		t.Error("K too large accepted")
	}
	bad := append([]uint8(nil), classes...)
	bad[0] = 5
	if _, err := NewTxDB(d, bad, 2); err == nil {
		t.Error("class out of range accepted")
	}
}

func TestTallyOps(t *testing.T) {
	var a, b Tally
	a.AddClass(0, 3)
	a.AddClass(2, 5)
	b.AddClass(2, 2)
	a.Add(b)
	if a.Total() != 10 {
		t.Errorf("Total = %d, want 10", a.Total())
	}
	if got := a.Masked(1 << 2); got != 7 {
		t.Errorf("Masked(class2) = %d, want 7", got)
	}
	if got := a.Masked(1<<0 | 1<<2); got != 10 {
		t.Errorf("Masked(0|2) = %d, want 10", got)
	}
	if got := a.Masked(1 << 5); got != 0 {
		t.Errorf("Masked(empty class) = %d, want 0", got)
	}
}

func TestMinCount(t *testing.T) {
	cases := []struct {
		n    int
		s    float64
		want int64
	}{
		{100, 0.1, 10},
		{100, 0.101, 11},
		{6172, 0.1, 618},
		{10, 0, 1},
		{10, -1, 1},
		{3, 0.5, 2},
		{1000, 0.001, 1},
	}
	for _, c := range cases {
		if got := MinCount(c.n, c.s); got != c.want {
			t.Errorf("MinCount(%d, %v) = %d, want %d", c.n, c.s, got, c.want)
		}
	}
}

func TestTxDBHelpers(t *testing.T) {
	db := smallTxDB(t)
	total := db.TotalTally()
	if total.Total() != int64(db.NumRows()) {
		t.Errorf("TotalTally sums to %d, want %d", total.Total(), db.NumRows())
	}
	is, err := db.Catalog.ItemsetByNames("color=red")
	if err != nil {
		t.Fatal(err)
	}
	rows := db.SupportSet(is)
	if len(rows) != 3 {
		t.Errorf("SupportSet(color=red) = %v, want 3 rows", rows)
	}
	tally := db.TallyOf(is)
	if tally.Total() != 3 {
		t.Errorf("TallyOf total = %d, want 3", tally.Total())
	}
}

// patternsByKey indexes mined output for comparison.
func patternsByKey(ps []FrequentPattern) map[string]Tally {
	m := make(map[string]Tally, len(ps))
	for _, p := range ps {
		m[p.Items.Key()] = p.Tally
	}
	return m
}

func minersUnderTest() []Miner {
	return []Miner{BruteForce{}, Apriori{}, FPGrowth{}, Eclat{}, Parallel{}}
}

// All three miners agree exactly on the small fixture at every threshold.
func TestMinersAgreeOnFixture(t *testing.T) {
	db := smallTxDB(t)
	for minCount := int64(1); minCount <= 4; minCount++ {
		ref, err := BruteForce{}.Mine(db, minCount)
		if err != nil {
			t.Fatal(err)
		}
		refMap := patternsByKey(ref)
		for _, m := range minersUnderTest()[1:] {
			got, err := m.Mine(db, minCount)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			gotMap := patternsByKey(got)
			if !reflect.DeepEqual(refMap, gotMap) {
				t.Errorf("minCount=%d: %s output differs from brute force (%d vs %d patterns)",
					minCount, m.Name(), len(gotMap), len(refMap))
			}
		}
	}
}

// Hand-checked tallies on the fixture: itemset (color=red, shape=round)
// covers only row 0, which has class 0.
func TestMinedTalliesExact(t *testing.T) {
	db := smallTxDB(t)
	out, err := FPGrowth{}.Mine(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	is, err := db.Catalog.ItemsetByNames("color=red", "shape=round")
	if err != nil {
		t.Fatal(err)
	}
	tally, ok := patternsByKey(out)[is.Key()]
	if !ok {
		t.Fatal("itemset (color=red, shape=round) not mined")
	}
	if tally[0] != 1 || tally[1] != 0 {
		t.Errorf("tally = %v, want [1 0 ...]", tally)
	}
}

// No pattern below the threshold is emitted, and every emitted tally
// matches a direct recount (soundness).
func TestMinerSoundness(t *testing.T) {
	db := smallTxDB(t)
	for _, m := range minersUnderTest() {
		out, err := m.Mine(db, 2)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, p := range out {
			if p.Tally.Total() < 2 {
				t.Errorf("%s emitted infrequent pattern %v", m.Name(), p.Items)
			}
			if got := db.TallyOf(p.Items); got != p.Tally {
				t.Errorf("%s: tally mismatch for %v: %v vs recount %v",
					m.Name(), p.Items, p.Tally, got)
			}
			// No two items of the same attribute.
			seen := map[int]bool{}
			for _, it := range p.Items {
				a := db.Catalog.Attr(it)
				if seen[a] {
					t.Errorf("%s: pattern %v repeats attribute %d", m.Name(), p.Items, a)
				}
				seen[a] = true
			}
		}
	}
}

func TestMinerRejectsBadMinCount(t *testing.T) {
	db := smallTxDB(t)
	for _, m := range minersUnderTest() {
		if _, err := m.Mine(db, 0); err == nil {
			t.Errorf("%s accepted minCount=0", m.Name())
		}
	}
}

// randomTxDB builds a reproducible random database with the given shape.
func randomTxDB(t testing.TB, seed int64, rows, attrs, card, k int) *TxDB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b := dataset.NewBuilder(names...)
	rec := make([]string, attrs)
	for r := 0; r < rows; r++ {
		for j := range rec {
			rec[j] = string(rune('0' + rng.Intn(card)))
		}
		if err := b.Add(rec...); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]uint8, rows)
	for i := range classes {
		classes[i] = uint8(rng.Intn(k))
	}
	db, err := NewTxDB(d, classes, k)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// Theorem 5.1 as a property: on random databases, Apriori and FP-growth
// produce byte-for-byte the same pattern→tally map as brute force —
// sound (nothing extra, tallies exact) and complete (nothing missing).
func TestTheorem51SoundCompleteProperty(t *testing.T) {
	f := func(seedRaw uint32, rowsRaw, attrsRaw, cardRaw, minRaw uint8) bool {
		rows := int(rowsRaw%40) + 5
		attrs := int(attrsRaw%4) + 2
		card := int(cardRaw%3) + 2
		minCount := int64(minRaw%5) + 1
		db := randomTxDB(t, int64(seedRaw), rows, attrs, card, 3)
		ref, err := BruteForce{}.Mine(db, minCount)
		if err != nil {
			return false
		}
		refMap := patternsByKey(ref)
		for _, m := range []Miner{Apriori{}, FPGrowth{}, Eclat{}, Parallel{}} {
			got, err := m.Mine(db, minCount)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(refMap, patternsByKey(got)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Support counts are anti-monotone: every subset of a frequent itemset is
// frequent with at least the same support.
func TestAntiMonotonicityProperty(t *testing.T) {
	db := randomTxDB(t, 42, 120, 4, 3, 2)
	out, err := FPGrowth{}.Mine(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	byKey := patternsByKey(out)
	for _, p := range out {
		if len(p.Items) < 2 {
			continue
		}
		p.Items.Subsets(func(sub Itemset) {
			st, ok := byKey[sub.Clone().Key()]
			if !ok {
				t.Fatalf("subset %v of frequent %v missing", sub, p.Items)
			}
			if st.Total() < p.Tally.Total() {
				t.Fatalf("subset %v has smaller support than superset %v", sub, p.Items)
			}
		})
	}
}

// A miner must mine the maximal itemsets too: with minCount=1 every full
// row is a frequent pattern of length = #attributes.
func TestFullLengthPatternsAtMinCountOne(t *testing.T) {
	db := smallTxDB(t)
	out, err := Apriori{}.Mine(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := patternsByKey(out)
	for r := range db.Data.Rows {
		is := db.Catalog.RowItems(db.Data.Rows[r])
		if _, ok := byKey[is.Key()]; !ok {
			t.Errorf("row %d itemset %v missing from output", r, is)
		}
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.set(i)
	}
	if !b.get(0) || !b.get(64) || b.get(1) {
		t.Error("get/set misbehave")
	}
	if got := b.count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	c := newBitset(130)
	c.set(64)
	c.set(5)
	if got := countAnd(b, c); got != 1 {
		t.Errorf("countAnd = %d, want 1", got)
	}
	dst := newBitset(130)
	intersect(dst, b, c)
	if got := dst.count(); got != 1 || !dst.get(64) {
		t.Errorf("intersect wrong: count=%d", got)
	}
}
