package fpm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dataset"
)

// Anytime mining: the progressive tier behind budgeted queries
// ("best answer in 200ms"). The mine runs through the same zero-alloc
// patternSink seam as Mine/MineVisit/Parallel, with two differences:
//
//   - Visit order. Top-level subproblems are visited in descending
//     support order (most frequent item first) instead of ascending item
//     id. Each per-item subproblem is independent and complete, so the
//     set of emitted patterns is unchanged — but the cheap, high-support
//     subproblems stream out first, which is what an interrupted mine
//     wants to have finished.
//   - Budgets. A deadline and/or a pattern-count budget cut the mine
//     short. Every pattern emitted before the cut carries its exact
//     tally (budgets only truncate, they never approximate), and the
//     returned AnytimeInfo says why the mine ended.
//
// Approximation enters only through SampleRows: mining a row sample
// trades exact tallies for speed, with the error quantified by the
// Hoeffding/Wilson bounds in internal/stats (see core.ExploreTopKAnytime).

// CompletionReason says how an anytime mine ended.
type CompletionReason uint8

const (
	// ReasonExhausted: every frequent pattern was visited; the answer is
	// exact and complete.
	ReasonExhausted CompletionReason = iota
	// ReasonDeadline: the deadline passed before the mine finished.
	ReasonDeadline
	// ReasonBudget: the pattern-count budget was reached.
	ReasonBudget
)

// String returns the wire name used by the /explore API and the WAL.
func (r CompletionReason) String() string {
	switch r {
	case ReasonExhausted:
		return "exhausted"
	case ReasonDeadline:
		return "deadline"
	case ReasonBudget:
		return "budget"
	default:
		return "unknown"
	}
}

// Partial reports whether the mine was cut short.
func (r CompletionReason) Partial() bool { return r != ReasonExhausted }

// AnytimeBudget bounds an anytime mine. The zero value is unlimited, in
// which case the mine is exactly MineVisit modulo emission order.
type AnytimeBudget struct {
	// Deadline, when non-zero, stops the mine once time.Now passes it.
	// The check runs at every subproblem boundary and every
	// deadlineCheckEvery-th pattern, so the overshoot is bounded by one
	// conditional-tree build.
	Deadline time.Time
	// MaxPatterns, when > 0, stops the mine after that many patterns
	// have been emitted.
	MaxPatterns int64
}

// AnytimeInfo reports how an anytime mine ended.
type AnytimeInfo struct {
	// Reason is why the mine stopped.
	Reason CompletionReason
	// Patterns counts the patterns emitted to the visitor.
	Patterns int64
}

// deadlineCheckEvery is the pattern cadence of deadline polls between
// subproblem boundaries. At typical emission rates (tens of ns per
// pattern) 512 patterns keep the overshoot well under a millisecond
// while making time.Now cost noise.
const deadlineCheckEvery = 512

// errAnytimeStop is the internal control-flow sentinel a budgeted sink
// returns to abort the recursion; MineAnytimeVisit converts it back into
// a successful, partial result.
var errAnytimeStop = errors.New("fpm: anytime budget reached")

// anytimeSink adapts a Visitor to the mining core's patternSink with
// budget enforcement: before each emission it charges the pattern
// budget and polls the deadline, stopping the mine with errAnytimeStop
// once either is exhausted. Like visitorSink it copies the borrowed
// suffix-stack slice into one reused scratch buffer, so the budgeted
// stream stays allocation-free in steady state.
type anytimeSink struct {
	visit       Visitor
	scratch     Itemset
	deadline    time.Time
	maxPatterns int64
	count       int64
	reason      CompletionReason
}

// emit implements patternSink.
func (a *anytimeSink) emit(items Itemset, t Tally) error {
	if a.maxPatterns > 0 && a.count >= a.maxPatterns {
		a.reason = ReasonBudget
		return errAnytimeStop
	}
	if !a.deadline.IsZero() && a.count%deadlineCheckEvery == 0 && !time.Now().Before(a.deadline) {
		a.reason = ReasonDeadline
		return errAnytimeStop
	}
	a.count++
	a.scratch = append(a.scratch[:0], items...)
	sortItems(a.scratch)
	return a.visit(FrequentPattern{Items: a.scratch, Tally: t})
}

// MineAnytimeVisit streams frequent patterns like MineVisit, but visits
// top-level subproblems in descending support order and stops early when
// the budget runs out. Every emitted pattern carries its exact tally;
// budgets truncate the stream, they never distort it. The returned info
// says whether the stream is complete (ReasonExhausted) or why it was
// cut. A visitor error aborts the mine and is returned as-is.
func (g FPGrowth) MineAnytimeVisit(db *TxDB, minCount int64, budget AnytimeBudget, visit Visitor) (AnytimeInfo, error) {
	if minCount < 1 {
		return AnytimeInfo{}, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	if visit == nil {
		return AnytimeInfo{}, fmt.Errorf("fpm: nil visitor")
	}
	s := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	return mineAnytime(s, db, minCount, budget, visit)
}

// mineAnytime is the warm-state core of MineAnytimeVisit: reusing s
// across calls makes the whole budgeted mine allocation-free once the
// arenas reach their high-water marks (guarded in anytime_test.go).
//
// lint:hot
func mineAnytime(s *mineState, db *TxDB, minCount int64, budget AnytimeBudget, visit Visitor) (AnytimeInfo, error) {
	root := s.buildRoot(db, minCount)
	// Reorder the top-level subproblems by global rank (rank 0 = highest
	// support). Subproblems are independent, so only emission order
	// changes; the parallel miner relies on the same property.
	sortItemsByRank(root.items, s.order)
	sink := &s.anySink
	sink.visit = visit
	sink.deadline = budget.Deadline
	sink.maxPatterns = budget.MaxPatterns
	sink.count = 0
	sink.reason = ReasonExhausted
	// lint:ignore ctxflow anytime cancellation is the budget carried by the sink (deadline + pattern cap); the conjured root context is never canceled
	err := s.mineAll(context.Background(), root, 1, minCount, sink)
	sink.visit = nil // drop the visitor so the warm state does not pin it
	// Restore the ascending-item invariant buildRoot established, so a
	// warm state's next (non-anytime) caller sees the order it expects.
	sortItems(root.items)
	if err != nil {
		if errors.Is(err, errAnytimeStop) {
			return AnytimeInfo{Reason: sink.reason, Patterns: sink.count}, nil
		}
		return AnytimeInfo{}, err
	}
	return AnytimeInfo{Reason: ReasonExhausted, Patterns: sink.count}, nil
}

// sortItemsByRank heapsorts items ascending by their global insertion
// rank — i.e. descending support, ties by ascending item id. Ranks are
// unique, so the order is total and the unstable sort is deterministic.
func sortItemsByRank(a []Item, order []int32) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftItemsByRank(a, i, n, order)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftItemsByRank(a, 0, i, order)
	}
}

func siftItemsByRank(a []Item, i, n int, order []int32) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && order[a[c+1]] > order[a[c]] {
			c++
		}
		if order[a[i]] >= order[a[c]] {
			return
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}

// SampleRows returns a transaction database over n rows drawn uniformly
// without replacement with the given seed, preserving row order. The
// catalog, schema and row slices are shared with db (both are
// read-only), so a sample costs O(n) index bookkeeping, not a data
// copy. When n <= 0 or n >= db.NumRows() the original db is returned:
// there is nothing to sample away.
func SampleRows(db *TxDB, n int, seed int64) *TxDB {
	total := db.NumRows()
	if n <= 0 || n >= total {
		return db
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(total)[:n]
	sort.Ints(idx)
	rows := make([][]int32, n)
	classes := make([]uint8, n)
	for i, r := range idx {
		rows[i] = db.Data.Rows[r]
		classes[i] = db.Classes[r]
	}
	return &TxDB{
		Catalog: db.Catalog,
		Data:    &dataset.Dataset{Attrs: db.Data.Attrs, Rows: rows},
		Classes: classes,
		K:       db.K,
	}
}
