package fpm

import "fmt"

// Apriori mines frequent itemsets level-wise (Agrawal & Srikant, VLDB'94)
// over a vertical bitset layout: every itemset carries the bitset of rows
// it covers, candidate covers are bitwise intersections, and outcome
// tallies are masked popcounts against per-class row bitsets. This is the
// Apriori-based variant of Algorithm 1.
type Apriori struct{}

// Name implements Miner.
func (Apriori) Name() string { return "apriori" }

// levelEntry is one frequent itemset of the current level with its cover.
type levelEntry struct {
	items Itemset
	cover bitset
}

// Mine implements Miner.
func (Apriori) Mine(db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	n := db.NumRows()
	cat := db.Catalog

	// Per-class row bitsets, used to split covers into tallies.
	classBits := make([]bitset, db.K)
	for c := range classBits {
		classBits[c] = newBitset(n)
	}
	for r, c := range db.Classes {
		classBits[c].set(r)
	}
	tallyOf := func(cover bitset) Tally {
		var t Tally
		for c := 0; c < db.K; c++ {
			t[c] = countAnd(cover, classBits[c])
		}
		return t
	}

	// Level 1: item covers.
	itemCover := make([]bitset, cat.NumItems())
	for i := range itemCover {
		itemCover[i] = newBitset(n)
	}
	for r, row := range db.Data.Rows {
		for a, v := range row {
			itemCover[cat.ItemFor(a, v)].set(r)
		}
	}
	var out []FrequentPattern
	var level []levelEntry
	for i := 0; i < cat.NumItems(); i++ {
		cover := itemCover[i]
		if cover.count() < minCount {
			continue
		}
		items := Itemset{Item(i)}
		out = append(out, FrequentPattern{Items: items, Tally: tallyOf(cover)})
		level = append(level, levelEntry{items: items, cover: cover})
	}

	// Levels k >= 2: join entries sharing a (k-1)-prefix; prune candidates
	// with an infrequent subset; verify support by cover intersection.
	for len(level) >= 2 {
		frequentKeys := make(map[string]bool, len(level))
		for _, e := range level {
			frequentKeys[e.items.Key()] = true
		}
		var next []levelEntry
		k := len(level[0].items)
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !samePrefix(a.items, b.items, k-1) {
					break // level is sorted lexicographically; prefixes diverge
				}
				lastA, lastB := a.items[k-1], b.items[k-1]
				// Items of the same attribute cannot co-occur in an itemset.
				if cat.Attr(lastA) == cat.Attr(lastB) {
					continue
				}
				cand := append(a.items.Clone(), lastB)
				if !allSubsetsFrequent(cand, frequentKeys) {
					continue
				}
				cover := newBitset(n)
				intersect(cover, a.cover, b.cover)
				tally := tallyOf(cover)
				if tally.Total() < minCount {
					continue
				}
				out = append(out, FrequentPattern{Items: cand, Tally: tally})
				next = append(next, levelEntry{items: cand, cover: cover})
			}
		}
		level = next
	}
	return out, nil
}

// samePrefix reports whether the first p items of a and b coincide.
func samePrefix(a, b Itemset, p int) bool {
	for i := 0; i < p; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori pruning rule: every (k-1)-subset
// of a k-candidate must itself be frequent. Only the subsets dropping one
// of the first k-2 items need checking; the two generators are frequent
// by construction.
func allSubsetsFrequent(cand Itemset, frequent map[string]bool) bool {
	k := len(cand)
	buf := make(Itemset, 0, k-1)
	for drop := 0; drop < k-2; drop++ {
		buf = buf[:0]
		for i, it := range cand {
			if i != drop {
				buf = append(buf, it)
			}
		}
		if !frequent[buf.Key()] {
			return false
		}
	}
	return true
}
