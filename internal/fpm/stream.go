package fpm

import (
	"fmt"
	"sort"
)

// Visitor receives one frequent pattern during a streaming mine. The
// Items slice is owned by the callee only for the duration of the call;
// clone it to retain it. Returning an error aborts the mine.
type Visitor func(p FrequentPattern) error

// StreamMiner is implemented by miners that can emit patterns one by one
// without materializing the whole result — the memory-bounded path for
// workloads like german at s = 0.01 (3.5M itemsets).
type StreamMiner interface {
	Miner
	// MineVisit calls visit for every frequent pattern. Patterns arrive
	// in mining order (not the canonical sorted order of Mine), with
	// items within each pattern sorted ascending.
	MineVisit(db *TxDB, minCount int64, visit Visitor) error
}

// MineVisit implements StreamMiner for FP-growth.
func (FPGrowth) MineVisit(db *TxDB, minCount int64, visit Visitor) error {
	if minCount < 1 {
		return fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	if visit == nil {
		return fmt.Errorf("fpm: nil visitor")
	}
	tree, err := buildInitialTree(db, minCount)
	if err != nil {
		return err
	}
	if len(tree.totals) == 0 {
		return nil
	}
	items := make([]Item, 0, len(tree.totals))
	for it := range tree.totals {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	buf := make(Itemset, 0, db.Catalog.NumAttrs())
	for _, it := range items {
		if err := visitTree(tree, it, nil, minCount, buf, visit); err != nil {
			return err
		}
	}
	return nil
}

// visitTree mines the subproblem of item it within tree, with suffix
// pattern suffix, streaming every pattern to visit.
func visitTree(t *fpTree, it Item, suffix Itemset, minCount int64, buf Itemset, visit Visitor) error {
	pattern := append(append(buf[:0], suffix...), it)
	sorted := pattern.Sorted()
	if err := visit(FrequentPattern{Items: sorted, Tally: t.totals[it]}); err != nil {
		return err
	}
	var base []weightedTx
	for n := t.headers[it]; n != nil; n = n.hlink {
		var path []Item
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			path = append(path, p.item)
		}
		if len(path) == 0 {
			continue
		}
		base = append(base, weightedTx{items: path, w: n.tally})
	}
	if len(base) == 0 {
		return nil
	}
	cond := buildTree(base, minCount, t.order)
	if len(cond.totals) == 0 {
		return nil
	}
	next := append(suffix.Clone(), it)
	condItems := make([]Item, 0, len(cond.totals))
	for ci := range cond.totals {
		condItems = append(condItems, ci)
	}
	sort.Slice(condItems, func(i, j int) bool { return condItems[i] < condItems[j] })
	inner := make(Itemset, 0, cap(buf))
	for _, ci := range condItems {
		if err := visitTree(cond, ci, next, minCount, inner, visit); err != nil {
			return err
		}
	}
	return nil
}

// CountFrequent streams a mine and returns only the number of frequent
// itemsets — Figure 7's quantity — in O(tree) memory instead of O(result).
func CountFrequent(db *TxDB, minCount int64) (int64, error) {
	var n int64
	err := FPGrowth{}.MineVisit(db, minCount, func(FrequentPattern) error {
		n++
		return nil
	})
	return n, err
}
