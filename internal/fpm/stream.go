package fpm

import (
	"context"
	"fmt"
)

// Visitor receives one frequent pattern during a streaming mine. The
// Items slice is owned by the callee only for the duration of the call;
// clone it to retain it. Returning an error aborts the mine.
type Visitor func(p FrequentPattern) error

// StreamMiner is implemented by miners that can emit patterns one by one
// without materializing the whole result — the memory-bounded path for
// workloads like german at s = 0.01 (3.5M itemsets).
type StreamMiner interface {
	Miner
	// MineVisit calls visit for every frequent pattern. Patterns arrive
	// in mining order (not the canonical sorted order of Mine), with
	// items within each pattern sorted ascending.
	MineVisit(db *TxDB, minCount int64, visit Visitor) error
}

// visitorSink adapts a Visitor to the mining core's patternSink: the
// borrowed suffix-stack slice is copied into one reused scratch buffer
// and sorted, so the whole stream costs a single pattern-sized buffer.
type visitorSink struct {
	visit   Visitor
	scratch Itemset
}

// emit implements patternSink.
func (v *visitorSink) emit(items Itemset, t Tally) error {
	v.scratch = append(v.scratch[:0], items...)
	sortItems(v.scratch)
	return v.visit(FrequentPattern{Items: v.scratch, Tally: t})
}

// MineVisit implements StreamMiner for FP-growth.
func (FPGrowth) MineVisit(db *TxDB, minCount int64, visit Visitor) error {
	if minCount < 1 {
		return fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	if visit == nil {
		return fmt.Errorf("fpm: nil visitor")
	}
	s := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	root := s.buildRoot(db, minCount)
	sink := visitorSink{visit: visit}
	// lint:ignore ctxflow StreamMiner's abort mechanism is the visitor's error return; the interface predates contexts and the conjured root context is never canceled
	return s.mineAll(context.Background(), root, 1, minCount, &sink)
}

// CountFrequent streams a mine and returns only the number of frequent
// itemsets — Figure 7's quantity — in O(tree) memory instead of O(result).
func CountFrequent(db *TxDB, minCount int64) (int64, error) {
	var n int64
	err := FPGrowth{}.MineVisit(db, minCount, func(FrequentPattern) error {
		n++
		return nil
	})
	return n, err
}
