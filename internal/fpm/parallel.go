package fpm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel is a parallel FP-growth miner: after the initial FP-tree is
// built, each frequent item's conditional tree is an independent mining
// task, so the per-item subproblems are fanned out over a worker pool.
// Output is identical (and identically ordered) to FPGrowth; the
// miner-ablation benchmark measures the speedup on itemset-heavy
// workloads such as german at low support.
//
// Each worker owns a full mineState (arena, frames, pattern arena), so
// workers share only the read-only initial tree and the per-subproblem
// result slots: no locks, no allocation contention, and the same
// zero-steady-state-allocation property as the sequential miner, per
// worker.
type Parallel struct {
	// Workers bounds the pool size; runtime.GOMAXPROCS(0) when <= 0.
	Workers int
	// Progress, when non-nil, is called after each per-item subproblem
	// completes with the number of finished subproblems and the total.
	// It may be called concurrently from several workers and must be
	// cheap and non-blocking; the job engine feeds it into per-job
	// progress counters.
	Progress func(done, total int)
	// Emit, when non-nil, is called after each per-item subproblem
	// completes with the patterns that subproblem mined, before Progress.
	// The batch is shared with the final result: receivers must treat it
	// as read-only but may retain it. Like Progress, Emit may be called
	// concurrently from several workers; it is the seam the job engine
	// uses to accumulate partial-result snapshots while a long mine is
	// still underway.
	Emit func(batch []FrequentPattern, done, total int)
}

// Name implements Miner.
func (p Parallel) Name() string { return "fpgrowth-parallel" }

// Mine implements Miner.
func (p Parallel) Mine(db *TxDB, minCount int64) ([]FrequentPattern, error) {
	// lint:ignore ctxflow Mine is the documented no-cancellation compatibility shim over MineContext; callers that can cancel use MineContext directly
	return p.MineContext(context.Background(), db, minCount)
}

// MineContext implements ContextMiner. Workers check the context before
// starting each per-item subproblem and inside the tree recursion, so a
// canceled mine stops within one conditional-tree step per worker.
//
// lint:hot
func (p Parallel) MineContext(ctx context.Context, db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	s0 := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	root := s0.buildRoot(db, minCount)
	total := len(root.items)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	run := &parallelRun{
		ctx:      ctx,
		db:       db,
		root:     root,
		order:    s0.order,
		minCount: minCount,
		results:  make([][]FrequentPattern, total),
		errs:     make([]error, total),
		emit:     p.Emit,
		progress: p.Progress,
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go run.work(&wg)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, mineCanceled{err}
	}
	for _, e := range run.errs {
		if e != nil {
			return nil, e
		}
	}

	n := 0
	for _, rs := range run.results {
		n += len(rs)
	}
	var out []FrequentPattern
	if n > 0 {
		out = make([]FrequentPattern, 0, n)
	}
	for _, rs := range run.results {
		out = append(out, rs...)
	}
	sortPatterns(out)
	return out, nil
}

// parallelRun is the shared state of one parallel mine: the read-only
// initial tree, the atomic work index workers claim subproblems from,
// and the per-subproblem result slots (indexed writes, so no locking).
type parallelRun struct {
	ctx      context.Context
	db       *TxDB
	root     *mineFrame
	order    []int32
	minCount int64
	results  [][]FrequentPattern
	errs     []error
	next     atomic.Int64 // work index into root.items
	done     atomic.Int64 // completed subproblems, for emit/progress
	emit     func(batch []FrequentPattern, done, total int)
	progress func(done, total int)
}

// work is one pool worker: it claims per-item subproblems off the work
// index until the list is drained or the context is canceled, mining
// each with its own private state.
func (r *parallelRun) work(wg *sync.WaitGroup) {
	defer wg.Done()
	s := newMineState(r.db.Catalog.NumItems(), r.db.Catalog.NumAttrs())
	s.order = r.order
	var col arenaCollector
	col.s = s
	total := len(r.root.items)
	for {
		idx := int(r.next.Add(1)) - 1
		if idx >= total || r.ctx.Err() != nil {
			return
		}
		// Start a fresh batch but keep the pattern arena: emitted batches
		// are retained by receivers, so the arena is append-only across
		// the worker's whole run.
		col.out = nil
		if err := s.mineSub(r.ctx, r.root, 0, r.root.items[idx], r.minCount, &col); err != nil {
			r.errs[idx] = err
			continue
		}
		rs := col.out
		// Canonicalize within the worker so emitted batches are never
		// mutated afterwards (Emit receivers may retain them).
		for i := range rs {
			sortItems(rs[i].Items)
		}
		r.results[idx] = rs
		if r.emit != nil || r.progress != nil {
			n := int(r.done.Add(1))
			if r.emit != nil {
				r.emit(rs, n, total)
			}
			if r.progress != nil {
				r.progress(n, total)
			}
		}
	}
}
