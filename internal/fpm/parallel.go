package fpm

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel is a parallel FP-growth miner: after the initial FP-tree is
// built, each frequent item's conditional tree is an independent mining
// task, so the per-item subproblems are fanned out over a worker pool.
// Output is identical (and identically ordered) to FPGrowth; the
// miner-ablation benchmark measures the speedup on itemset-heavy
// workloads such as german at low support.
type Parallel struct {
	// Workers bounds the pool size; runtime.GOMAXPROCS(0) when <= 0.
	Workers int
	// Progress, when non-nil, is called after each per-item subproblem
	// completes with the number of finished subproblems and the total.
	// It may be called concurrently from several workers and must be
	// cheap and non-blocking; the job engine feeds it into per-job
	// progress counters.
	Progress func(done, total int)
	// Emit, when non-nil, is called after each per-item subproblem
	// completes with the patterns that subproblem mined, before Progress.
	// The batch is shared with the final result: receivers must treat it
	// as read-only but may retain it. Like Progress, Emit may be called
	// concurrently from several workers; it is the seam the job engine
	// uses to accumulate partial-result snapshots while a long mine is
	// still underway.
	Emit func(batch []FrequentPattern, done, total int)
}

// Name implements Miner.
func (p Parallel) Name() string { return "fpgrowth-parallel" }

// Mine implements Miner.
func (p Parallel) Mine(db *TxDB, minCount int64) ([]FrequentPattern, error) {
	return p.MineContext(context.Background(), db, minCount)
}

// MineContext implements ContextMiner. Workers check the context before
// starting each per-item subproblem and inside the tree recursion, so a
// canceled mine stops within one conditional-tree step per worker.
func (p Parallel) MineContext(ctx context.Context, db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tree, err := buildInitialTree(db, minCount)
	if err != nil {
		return nil, err
	}

	items := make([]Item, 0, len(tree.totals))
	for it := range tree.totals {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	total := len(items)
	results := make([][]FrequentPattern, total)
	errs := make([]error, total)
	var done atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for idx, it := range items {
		if ctx.Err() != nil {
			break // canceled: stop scheduling new subproblems
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int, it Item) {
			defer func() {
				<-sem
				wg.Done()
			}()
			rs, err := mineItemSubproblem(ctx, tree, it, minCount)
			if err != nil {
				errs[idx] = err
				return
			}
			// Canonicalize within the worker so emitted batches are never
			// mutated afterwards (Emit receivers may retain them).
			for i := range rs {
				sort.Slice(rs[i].Items, func(a, b int) bool { return rs[i].Items[a] < rs[i].Items[b] })
			}
			results[idx] = rs
			if p.Emit != nil || p.Progress != nil {
				n := int(done.Add(1))
				if p.Emit != nil {
					p.Emit(rs, n, total)
				}
				if p.Progress != nil {
					p.Progress(n, total)
				}
			}
		}(idx, it)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fpm: mining canceled: %w", err)
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	var out []FrequentPattern
	for _, rs := range results {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool { return lessItemsets(out[i].Items, out[j].Items) })
	return out, nil
}

// buildInitialTree constructs the first FP-tree over the database, as in
// the sequential miner.
func buildInitialTree(db *TxDB, minCount int64) (*fpTree, error) {
	cat := db.Catalog
	itemTally := make([]Tally, cat.NumItems())
	for r, row := range db.Data.Rows {
		c := db.Classes[r]
		for a, v := range row {
			itemTally[cat.ItemFor(a, v)][c]++
		}
	}
	type rankedItem struct {
		item  Item
		count int64
	}
	ranked := make([]rankedItem, 0, cat.NumItems())
	for i := range itemTally {
		if cnt := itemTally[i].Total(); cnt >= minCount {
			ranked = append(ranked, rankedItem{Item(i), cnt})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].item < ranked[j].item
	})
	order := make(map[Item]int, len(ranked))
	for r, ri := range ranked {
		order[ri.item] = r
	}
	txs := make([]weightedTx, 0, db.NumRows())
	rowBuf := make([]Item, 0, cat.NumAttrs())
	for r, row := range db.Data.Rows {
		rowBuf = rowBuf[:0]
		for a, v := range row {
			it := cat.ItemFor(a, v)
			if _, ok := order[it]; ok {
				rowBuf = append(rowBuf, it)
			}
		}
		var w Tally
		w[db.Classes[r]] = 1
		txs = append(txs, weightedTx{items: append([]Item(nil), rowBuf...), w: w})
	}
	return buildTree(txs, minCount, order), nil
}

// mineItemSubproblem emits the pattern {it} plus everything mined from
// it's conditional tree. It only reads the shared initial tree, so
// concurrent invocations are safe.
func mineItemSubproblem(ctx context.Context, tree *fpTree, it Item, minCount int64) ([]FrequentPattern, error) {
	out := []FrequentPattern{{Items: Itemset{it}, Tally: tree.totals[it]}}
	var base []weightedTx
	for n := tree.headers[it]; n != nil; n = n.hlink {
		var path []Item
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			path = append(path, p.item)
		}
		if len(path) == 0 {
			continue
		}
		base = append(base, weightedTx{items: path, w: n.tally})
	}
	if len(base) == 0 {
		return out, nil
	}
	cond := buildTree(base, minCount, tree.order)
	if len(cond.totals) > 0 {
		if err := mineTree(ctx, cond, Itemset{it}, minCount, &out); err != nil {
			return nil, err
		}
	}
	return out, nil
}
