package fpm

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestMineContextPreCanceled: a context canceled before the mine starts
// aborts both context-aware miners with an error wrapping ctx.Err().
func TestMineContextPreCanceled(t *testing.T) {
	db := randomTxDB(t, 7, 120, 4, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []ContextMiner{FPGrowth{}, Parallel{Workers: 2}} {
		if _, err := m.MineContext(ctx, db, 1); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", m.Name(), err)
		}
	}
}

// TestMineContextMatchesMine: with a live context, MineContext is
// byte-identical to the context-free entry point.
func TestMineContextMatchesMine(t *testing.T) {
	db := randomTxDB(t, 11, 150, 4, 3, 2)
	want, err := FPGrowth{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ContextMiner{FPGrowth{}, Parallel{Workers: 3}} {
		got, err := m.MineContext(context.Background(), db, 3)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: MineContext output differs from Mine", m.Name())
		}
	}
}

// TestParallelCancelDuringMine cancels from the Progress callback — i.e.
// deterministically mid-mine, after the first subproblem completes — and
// asserts the mine reports cancellation rather than a partial result.
func TestParallelCancelDuringMine(t *testing.T) {
	db := randomTxDB(t, 13, 200, 5, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := Parallel{Workers: 1, Progress: func(done, total int) {
		if done == 1 {
			cancel()
		}
	}}
	if _, err := p.MineContext(ctx, db, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelProgressReachesTotal: an uncanceled mine reports progress
// monotonically up to done == total.
func TestParallelProgressReachesTotal(t *testing.T) {
	db := randomTxDB(t, 17, 150, 4, 3, 2)
	var last, total int
	p := Parallel{Workers: 1, Progress: func(d, tot int) {
		if d != last+1 {
			t.Errorf("progress jumped from %d to %d", last, d)
		}
		last, total = d, tot
	}}
	if _, err := p.Mine(db, 2); err != nil {
		t.Fatal(err)
	}
	if total == 0 || last != total {
		t.Errorf("final progress %d/%d, want done == total > 0", last, total)
	}
}

// TestMineWith routes through MineContext for context-aware miners and
// still works (ignoring the context) for plain ones.
func TestMineWith(t *testing.T) {
	db := smallTxDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineWith(ctx, FPGrowth{}, db, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("context-aware miner ignored cancellation: %v", err)
	}
	// BruteForce has no MineContext; the canceled context is ignored.
	if _, err := MineWith(ctx, BruteForce{}, db, 1); err != nil {
		t.Errorf("plain miner failed under MineWith: %v", err)
	}
}
