package fpm

import (
	"fmt"
	"sort"
)

// BruteForce enumerates frequent itemsets by depth-first search over
// attributes with anti-monotone support pruning, computing every tally by
// an explicit row scan over the current cover. It is deliberately simple:
// the reference implementation against which Apriori and FP-growth are
// checked for soundness and completeness (Theorem 5.1). Use only on small
// inputs.
type BruteForce struct{}

// Name implements Miner.
func (BruteForce) Name() string { return "brute" }

// Mine implements Miner.
func (BruteForce) Mine(db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	cat := db.Catalog
	var out []FrequentPattern

	all := make([]int, db.NumRows())
	for i := range all {
		all[i] = i
	}

	// Recursively extend the current itemset with items of attributes
	// strictly after fromAttr; cover is the current support-set.
	var walk func(items Itemset, cover []int, fromAttr int)
	walk = func(items Itemset, cover []int, fromAttr int) {
		for a := fromAttr; a < cat.NumAttrs(); a++ {
			for v := 0; v < cat.Cardinality(a); v++ {
				it := cat.ItemFor(a, int32(v))
				var sub []int
				var tally Tally
				for _, r := range cover {
					if db.Data.Rows[r][a] == int32(v) {
						sub = append(sub, r)
						tally[db.Classes[r]]++
					}
				}
				if tally.Total() < minCount {
					continue
				}
				next := append(items.Clone(), it)
				out = append(out, FrequentPattern{Items: next, Tally: tally})
				walk(next, sub, a+1)
			}
		}
	}
	walk(nil, all, 0)

	sort.Slice(out, func(i, j int) bool { return lessItemsets(out[i].Items, out[j].Items) })
	return out, nil
}
