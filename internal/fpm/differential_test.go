package fpm

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
)

// The differential suite is the empirical side of the Theorem 5.1 guard:
// every miner must produce the identical itemset→tally map on randomized
// datasets spanning skewed domains, unbalanced labels and a range of
// support thresholds. BruteForce is the oracle on shapes small enough to
// afford it; on larger shapes the four real miners check each other.

// diffShape is one randomized dataset configuration.
type diffShape struct {
	rows, attrs, maxCard int
	oracle               bool // include the exponential BruteForce miner
}

func diffShapes(short bool) []diffShape {
	shapes := []diffShape{
		{rows: 30, attrs: 3, maxCard: 3, oracle: true},
		{rows: 60, attrs: 4, maxCard: 4, oracle: true},
		{rows: 200, attrs: 5, maxCard: 4},
	}
	if !short {
		shapes = append(shapes,
			diffShape{rows: 120, attrs: 4, maxCard: 6, oracle: true},
			diffShape{rows: 400, attrs: 6, maxCard: 5},
			diffShape{rows: 800, attrs: 5, maxCard: 3},
		)
	}
	return shapes
}

// randomLabeledTxDB draws a seeded random labelled dataset and wraps it as a
// 4-class transaction database (the confusion cells, computed inline:
// class = 2·truth + pred).
func randomLabeledTxDB(t *testing.T, seed int64, sh diffShape) *TxDB {
	t.Helper()
	g, err := datagen.Random(seed, datagen.RandomConfig{
		Rows:    sh.rows,
		Attrs:   sh.attrs,
		MaxCard: sh.maxCard,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]uint8, len(g.Truth))
	for i := range classes {
		c := uint8(0)
		if g.Truth[i] {
			c |= 2
		}
		if g.Pred[i] {
			c |= 1
		}
		classes[i] = c
	}
	db, err := NewTxDB(g.Data, classes, 4)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMinersAgreeOnRandomizedDatasets(t *testing.T) {
	supports := []float64{0.01, 0.05, 0.2, 0.5}
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, sh := range diffShapes(testing.Short()) {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("rows=%d/attrs=%d/card=%d/seed=%d", sh.rows, sh.attrs, sh.maxCard, seed), func(t *testing.T) {
				db := randomLabeledTxDB(t, seed, sh)
				miners := []Miner{Apriori{}, FPGrowth{}, Eclat{}, Parallel{}}
				if sh.oracle {
					miners = append([]Miner{BruteForce{}}, miners...)
				}
				for _, sup := range supports {
					minCount := MinCount(db.NumRows(), sup)
					ref, err := miners[0].Mine(db, minCount)
					if err != nil {
						t.Fatalf("%s(sup=%v): %v", miners[0].Name(), sup, err)
					}
					want := patternsByKey(ref)
					assertPatternInvariants(t, db, ref, minCount, miners[0].Name(), sup)
					for _, m := range miners[1:] {
						got, err := m.Mine(db, minCount)
						if err != nil {
							t.Fatalf("%s(sup=%v): %v", m.Name(), sup, err)
						}
						diffPatternMaps(t, want, patternsByKey(got), miners[0].Name(), m.Name(), sup)
					}
				}
			})
		}
	}
}

// diffPatternMaps reports every disagreement between two miners' outputs
// rather than just the first, so a real divergence is easy to diagnose.
func diffPatternMaps(t *testing.T, want, got map[string]Tally, refName, name string, sup float64) {
	t.Helper()
	if len(want) == len(got) {
		equal := true
		for k, w := range want {
			if g, ok := got[k]; !ok || g != w {
				equal = false
				break
			}
		}
		if equal {
			return
		}
	}
	missing, extra, tallies := 0, 0, 0
	for k, w := range want {
		g, ok := got[k]
		switch {
		case !ok:
			missing++
			if missing <= 3 {
				t.Errorf("%s vs %s (sup=%v): %s missing itemset %q", refName, name, sup, name, k)
			}
		case g != w:
			tallies++
			if tallies <= 3 {
				t.Errorf("%s vs %s (sup=%v): itemset %q tally %v != %v", refName, name, sup, k, g, w)
			}
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			extra++
			if extra <= 3 {
				t.Errorf("%s vs %s (sup=%v): %s mined extra itemset %q", refName, name, sup, name, k)
			}
		}
	}
	t.Errorf("%s vs %s (sup=%v): %d missing, %d extra, %d tally mismatches (|ref|=%d, |got|=%d)",
		refName, name, sup, missing, extra, tallies, len(want), len(got))
}

// assertPatternInvariants spot-checks the reference miner's own output:
// every reported tally matches a direct scan, meets the threshold, and
// no itemset repeats an attribute.
func assertPatternInvariants(t *testing.T, db *TxDB, ps []FrequentPattern, minCount int64, name string, sup float64) {
	t.Helper()
	// Direct scans are quadratic; checking a spread of patterns keeps the
	// suite fast while still catching systematic tally corruption.
	step := len(ps)/25 + 1
	for i := 0; i < len(ps); i += step {
		p := ps[i]
		if got := p.Tally.Total(); got < minCount {
			t.Errorf("%s(sup=%v): itemset %q support %d below threshold %d", name, sup, p.Items.Key(), got, minCount)
		}
		if want := db.TallyOf(p.Items); want != p.Tally {
			t.Errorf("%s(sup=%v): itemset %q tally %v, direct scan %v", name, sup, p.Items.Key(), p.Tally, want)
		}
		seen := make(map[int]bool)
		for _, it := range p.Items {
			a := db.Catalog.Attr(it)
			if seen[a] {
				t.Errorf("%s(sup=%v): itemset %q repeats attribute %d", name, sup, p.Items.Key(), a)
			}
			seen[a] = true
		}
	}
}

func TestRandomGeneratorDeterministic(t *testing.T) {
	cfg := datagen.RandomConfig{Rows: 100, Attrs: 4, MaxCard: 5}
	a, err := datagen.Random(9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := datagen.Random(9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.NumRows() != b.Data.NumRows() || a.Data.NumAttrs() != b.Data.NumAttrs() {
		t.Fatal("same seed produced different shapes")
	}
	for r := range a.Data.Rows {
		for c := 0; c < a.Data.NumAttrs(); c++ {
			if a.Data.Value(r, c) != b.Data.Value(r, c) {
				t.Fatalf("same seed diverged at row %d col %d", r, c)
			}
		}
		if a.Truth[r] != b.Truth[r] || a.Pred[r] != b.Pred[r] {
			t.Fatalf("same seed diverged in labels at row %d", r)
		}
	}
	c, err := datagen.Random(10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < a.Data.NumRows() && same; r++ {
		for col := 0; col < a.Data.NumAttrs(); col++ {
			if a.Data.Value(r, col) != c.Data.Value(r, col) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
	if _, err := datagen.Random(1, datagen.RandomConfig{Rows: 0, Attrs: 1, MaxCard: 2}); err == nil {
		t.Error("zero rows accepted")
	}
}
