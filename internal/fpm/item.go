// Package fpm implements the frequent pattern mining substrate of the
// paper's Algorithm 1. It provides an item catalog mapping
// attribute=value pairs to dense item identifiers, itemset utilities, a
// transaction database carrying a per-row outcome class, and three
// miners: Apriori over vertical bitsets, FP-growth with outcome-tally
// counters, and a brute-force reference used to test soundness and
// completeness (Theorem 5.1).
//
// The crucial deviation from textbook mining is the Tally: instead of a
// single support counter, every itemset accumulates a small vector of
// counts, one per outcome class (e.g. the confusion cells TP/FP/FN/TN).
// Support is the tally total; divergence metrics are computed from the
// class counts by package core without ever re-scanning the data.
package fpm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Item identifies one attribute=value pair. Items are dense: all values
// of attribute 0 come first, then attribute 1, and so on.
type Item int32

// Itemset is a set of items over pairwise-distinct attributes, stored in
// ascending item order. Because the catalog assigns item ranges per
// attribute, ascending item order also groups items by attribute.
type Itemset []Item

// Key returns a canonical map key for the itemset. The itemset must be
// sorted (the package invariant).
//
// lint:ignore hotalloc the key is retained by callers as a map key; a reused buffer cannot back a Go string
func (is Itemset) Key() string {
	buf := make([]byte, 4*len(is))
	for i, it := range is {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(it))
	}
	return string(buf)
}

// ParseKey decodes a key produced by Key back into an itemset.
func ParseKey(key string) Itemset {
	is := make(Itemset, len(key)/4)
	for i := range is {
		is[i] = Item(binary.LittleEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return is
}

// Contains reports whether the itemset contains item it.
func (is Itemset) Contains(it Item) bool {
	for _, x := range is {
		if x == it {
			return true
		}
		if x > it {
			return false
		}
	}
	return false
}

// ContainsAll reports whether other ⊆ is. Both must be sorted.
func (is Itemset) ContainsAll(other Itemset) bool {
	i := 0
	for _, want := range other {
		for i < len(is) && is[i] < want {
			i++
		}
		if i >= len(is) || is[i] != want {
			return false
		}
		i++
	}
	return true
}

// Without returns a new itemset with item it removed. If it is absent the
// result is a copy of the original.
func (is Itemset) Without(it Item) Itemset {
	out := make(Itemset, 0, len(is))
	for _, x := range is {
		if x != it {
			out = append(out, x)
		}
	}
	return out
}

// Union returns the sorted union of two itemsets. Duplicate items are
// kept once. The caller must ensure the result does not put two items of
// the same attribute together if that matters to it.
func (is Itemset) Union(other Itemset) Itemset {
	out := make(Itemset, 0, len(is)+len(other))
	out = append(out, is...)
	out = append(out, other...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Deduplicate.
	w := 0
	for i, x := range out {
		if i == 0 || x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}

// Equal reports whether two itemsets are identical.
func (is Itemset) Equal(other Itemset) bool {
	if len(is) != len(other) {
		return false
	}
	for i := range is {
		if is[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the itemset.
func (is Itemset) Clone() Itemset { return append(Itemset(nil), is...) }

// Sorted returns a sorted copy of the itemset.
func (is Itemset) Sorted() Itemset {
	out := is.Clone()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subsets calls fn for every proper, non-empty subset of the itemset.
// For the empty or singleton itemset nothing is visited. fn receives a
// reused buffer; it must copy if it retains the subset.
func (is Itemset) Subsets(fn func(Itemset)) {
	n := len(is)
	if n < 2 {
		return
	}
	buf := make(Itemset, 0, n)
	for mask := 1; mask < (1<<n)-1; mask++ {
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, is[i])
			}
		}
		fn(buf)
	}
}

// Catalog maps between (attribute, value) pairs and dense Item ids for a
// particular dataset schema.
type Catalog struct {
	attrOf   []int32  // item -> attribute index
	valOf    []int32  // item -> value code within the attribute
	base     []int32  // attribute -> first item id
	names    []string // item -> "attr=value"
	schema   []dataset.Attribute
	numItems int
}

// NewCatalog builds the item catalog for a dataset schema.
func NewCatalog(d *dataset.Dataset) *Catalog {
	c := &Catalog{
		base:   make([]int32, d.NumAttrs()+1),
		schema: d.Attrs,
	}
	n := 0
	for i := range d.Attrs {
		c.base[i] = int32(n)
		n += d.Attrs[i].Cardinality()
	}
	c.base[d.NumAttrs()] = int32(n)
	c.numItems = n
	c.attrOf = make([]int32, n)
	c.valOf = make([]int32, n)
	c.names = make([]string, n)
	for a := range d.Attrs {
		for v := 0; v < d.Attrs[a].Cardinality(); v++ {
			id := c.base[a] + int32(v)
			c.attrOf[id] = int32(a)
			c.valOf[id] = int32(v)
			c.names[id] = d.Attrs[a].Name + "=" + d.Attrs[a].Values[v]
		}
	}
	return c
}

// NumItems returns the total number of items (attribute=value pairs).
func (c *Catalog) NumItems() int { return c.numItems }

// NumAttrs returns the number of attributes in the schema.
func (c *Catalog) NumAttrs() int { return len(c.schema) }

// Cardinality returns m_a, the domain size of attribute a.
func (c *Catalog) Cardinality(attr int) int { return c.schema[attr].Cardinality() }

// AttrName returns the name of attribute a.
func (c *Catalog) AttrName(attr int) string { return c.schema[attr].Name }

// ItemFor returns the item for attribute attr with value code val.
func (c *Catalog) ItemFor(attr int, val int32) Item {
	if attr < 0 || attr >= len(c.schema) {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic(fmt.Sprintf("fpm: attribute index %d out of range", attr))
	}
	if val < 0 || int(val) >= c.schema[attr].Cardinality() {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic(fmt.Sprintf("fpm: value code %d out of range for attribute %q", val, c.schema[attr].Name))
	}
	return Item(c.base[attr] + val)
}

// Attr returns the attribute index of item it.
func (c *Catalog) Attr(it Item) int { return int(c.attrOf[it]) }

// Value returns the value code of item it within its attribute.
func (c *Catalog) Value(it Item) int32 { return c.valOf[it] }

// Name returns the human-readable "attr=value" form of item it. Items
// outside the catalog render as "item#N" rather than panicking, so error
// paths can format arbitrary input safely.
func (c *Catalog) Name(it Item) string {
	if it < 0 || int(it) >= c.numItems {
		return fmt.Sprintf("item#%d", it)
	}
	return c.names[it]
}

// ItemByName resolves a "attr=value" string to its Item.
func (c *Catalog) ItemByName(s string) (Item, error) {
	eq := strings.Index(s, "=")
	if eq < 0 {
		return 0, fmt.Errorf("fpm: item %q is not of the form attr=value", s)
	}
	attrName, value := s[:eq], s[eq+1:]
	for a := range c.schema {
		if c.schema[a].Name != attrName {
			continue
		}
		code := c.schema[a].ValueCode(value)
		if code < 0 {
			return 0, fmt.Errorf("fpm: attribute %q has no value %q", attrName, value)
		}
		return c.ItemFor(a, int32(code)), nil
	}
	return 0, fmt.Errorf("fpm: unknown attribute %q", attrName)
}

// ItemsetByNames resolves a list of "attr=value" strings to a sorted
// Itemset, checking that attributes are pairwise distinct.
func (c *Catalog) ItemsetByNames(names ...string) (Itemset, error) {
	is := make(Itemset, 0, len(names))
	seen := make(map[int]bool, len(names))
	for _, n := range names {
		it, err := c.ItemByName(n)
		if err != nil {
			return nil, err
		}
		a := c.Attr(it)
		if seen[a] {
			return nil, fmt.Errorf("fpm: itemset mentions attribute %q twice", c.AttrName(a))
		}
		seen[a] = true
		is = append(is, it)
	}
	return is.Sorted(), nil
}

// Format renders an itemset as a comma-separated list of item names.
func (c *Catalog) Format(is Itemset) string {
	if len(is) == 0 {
		return "{}"
	}
	parts := make([]string, len(is))
	for i, it := range is {
		parts[i] = c.Name(it)
	}
	return strings.Join(parts, ", ")
}

// RowItems converts a dataset row (value codes per attribute) into its
// itemset, one item per attribute, sorted by construction.
func (c *Catalog) RowItems(row []int32) Itemset {
	is := make(Itemset, len(row))
	for a, v := range row {
		is[a] = Item(c.base[a] + v)
	}
	return is
}

// Attrs returns the sorted set of attribute indexes used by an itemset.
func (c *Catalog) Attrs(is Itemset) []int {
	out := make([]int, len(is))
	for i, it := range is {
		out[i] = c.Attr(it)
	}
	sort.Ints(out)
	return out
}
