package fpm

// The tally re-fold seam for permutation testing (DESIGN.md §15).
//
// Itemset covers — which rows an itemset matches — depend only on the
// attribute values, never on the outcome labels. A label permutation
// therefore leaves every cover (and so every support) untouched, and
// re-tallying an itemset under permuted labels is a single fold over its
// precomputed cover instead of a re-mine. CoverIndex materializes the
// covers of a fixed itemset list as one flat int32 arena so the
// permutation engine's inner loop is a pure sequential scan: no pointer
// chasing, no per-itemset allocation, no re-scanning the dataset.

// CoverIndex holds the support sets of a fixed list of itemsets over one
// transaction database, packed into a single flat row-index arena.
// Cover i occupies rows[offs[i]:offs[i+1]]; row indexes within a cover
// are ascending. The index is immutable after construction and safe for
// concurrent readers.
type CoverIndex struct {
	offs    []int32
	rows    []int32
	numRows int
}

// BuildCoverIndex computes the cover of every itemset by intersecting
// from each itemset's rarest item's posting list. Construction is a cold
// path: it scans the dataset once to build per-item postings, then
// filters the shortest posting per itemset with direct row-value checks.
func BuildCoverIndex(db *TxDB, itemsets []Itemset) *CoverIndex {
	n := db.NumRows()
	k := db.Catalog.NumItems()

	// Posting lists, flat: postRows[postOffs[it]:postOffs[it+1]] are the
	// rows containing item it, ascending.
	postLen := make([]int32, k)
	for _, row := range db.Data.Rows {
		for a, v := range row {
			postLen[db.Catalog.ItemFor(a, v)]++
		}
	}
	postOffs := make([]int32, k+1)
	for it := 0; it < k; it++ {
		postOffs[it+1] = postOffs[it] + postLen[it]
	}
	cursor := make([]int32, k)
	copy(cursor, postOffs[:k])
	postRows := make([]int32, postOffs[k])
	for r, row := range db.Data.Rows {
		for a, v := range row {
			it := db.Catalog.ItemFor(a, v)
			postRows[cursor[it]] = int32(r)
			cursor[it]++
		}
	}

	c := &CoverIndex{
		offs:    make([]int32, 1, len(itemsets)+1),
		numRows: n,
	}
	for _, is := range itemsets {
		if len(is) == 0 {
			// The empty itemset covers everything.
			for r := 0; r < n; r++ {
				c.rows = append(c.rows, int32(r))
			}
			c.offs = append(c.offs, int32(len(c.rows)))
			continue
		}
		rarest := is[0]
		for _, it := range is[1:] {
			if postLen[it] < postLen[rarest] {
				rarest = it
			}
		}
		for _, r := range postRows[postOffs[rarest]:postOffs[rarest+1]] {
			if db.Covers(int(r), is) {
				c.rows = append(c.rows, r)
			}
		}
		c.offs = append(c.offs, int32(len(c.rows)))
	}
	return c
}

// Len returns the number of indexed itemsets.
func (c *CoverIndex) Len() int { return len(c.offs) - 1 }

// NumRows returns the row count of the underlying database.
func (c *CoverIndex) NumRows() int { return c.numRows }

// Cover returns the row indexes covered by itemset i, ascending. The
// slice aliases the shared arena: callers must not modify it.
func (c *CoverIndex) Cover(i int) []int32 {
	return c.rows[c.offs[i]:c.offs[i+1]]
}

// Refold recomputes the tally of itemset i under an arbitrary per-row
// class labelling — the permutation-testing primitive. With the
// database's own Classes slice it reproduces TallyOf exactly.
func (c *CoverIndex) Refold(i int, classes []uint8) Tally {
	var t Tally
	for _, r := range c.Cover(i) {
		t[classes[r]]++
	}
	return t
}
