package fpm

import (
	"fmt"
	"testing"
)

// TestParallelStressDeterminism is the primary target of the -race
// verification tier (scripts/verify.sh runs `go test -race ./...`): it
// hammers Parallel.Mine with many worker counts, a small minCount (a
// deep, itemset-heavy search), and repeated runs, asserting the output
// is byte-identical to the sequential FPGrowth miner every single time.
//
// This is the mechanical check behind the Thm. 5.1 ordering contract:
// the per-item subproblems are fanned out over goroutines, so any data
// race in the shared initial tree or any order-dependence in how results
// are gathered would show up here as a diff (or under -race as a report)
// long before it silently corrupted divergence rankings downstream.
func TestParallelStressDeterminism(t *testing.T) {
	shapes := []struct {
		seed        int64
		rows, attrs int
		card, k     int
		minCount    int64
	}{
		{seed: 1, rows: 120, attrs: 6, card: 3, k: 2, minCount: 2},
		{seed: 2, rows: 200, attrs: 5, card: 2, k: 3, minCount: 2},
		{seed: 3, rows: 80, attrs: 7, card: 2, k: 2, minCount: 1},
	}
	const repeats = 4
	for _, shape := range shapes {
		shape := shape
		t.Run(fmt.Sprintf("seed%d", shape.seed), func(t *testing.T) {
			t.Parallel()
			db := randomTxDB(t, shape.seed, shape.rows, shape.attrs, shape.card, shape.k)
			want, err := FPGrowth{}.Mine(db, shape.minCount)
			if err != nil {
				t.Fatal(err)
			}
			wantStr := fmt.Sprintf("%v", want)
			for _, workers := range []int{1, 2, 3, 4, 8, 16, 32} {
				for rep := 0; rep < repeats; rep++ {
					got, err := Parallel{Workers: workers}.Mine(db, shape.minCount)
					if err != nil {
						t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
					}
					if gotStr := fmt.Sprintf("%v", got); gotStr != wantStr {
						t.Fatalf("workers=%d rep=%d: output diverged from FPGrowth\n got: %.200s\nwant: %.200s",
							workers, rep, gotStr, wantStr)
					}
				}
			}
		})
	}
}
