package fpm

import (
	"context"
	"math/rand"
	"testing"
)

// TestCoverIndexMatchesSupportSet is the differential check on the
// re-fold seam: for every mined itemset, the flat-arena cover must equal
// SupportSet row for row, and Refold with the database's own classes
// must reproduce TallyOf exactly.
func TestCoverIndexMatchesSupportSet(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		db := randomLabeledTxDB(t, 700+seed, diffShape{rows: 150, attrs: 4, maxCard: 4})
		mined, err := MineWith(context.Background(), FPGrowth{}, db, 5)
		if err != nil {
			t.Fatal(err)
		}
		itemsets := make([]Itemset, len(mined))
		for i, p := range mined {
			itemsets[i] = p.Items
		}
		c := BuildCoverIndex(db, itemsets)
		if c.Len() != len(itemsets) || c.NumRows() != db.NumRows() {
			t.Fatalf("seed %d: index shape Len=%d NumRows=%d", seed, c.Len(), c.NumRows())
		}
		for i, is := range itemsets {
			want := db.SupportSet(is)
			got := c.Cover(i)
			if len(got) != len(want) {
				t.Fatalf("seed %d itemset %v: cover size %d want %d", seed, is, len(got), len(want))
			}
			for j := range want {
				if int(got[j]) != want[j] {
					t.Fatalf("seed %d itemset %v: cover[%d]=%d want %d", seed, is, j, got[j], want[j])
				}
			}
			if got, want := c.Refold(i, db.Classes), db.TallyOf(is); got != want {
				t.Fatalf("seed %d itemset %v: refold %v want tally %v", seed, is, got, want)
			}
		}
	}
}

// TestCoverIndexRefoldUnderRelabeling checks the permutation-invariance
// property the engine relies on: refolding through the index with
// permuted classes equals re-tallying a database rebuilt with those
// classes (covers never move, only labels do).
func TestCoverIndexRefoldUnderRelabeling(t *testing.T) {
	db := randomLabeledTxDB(t, 77, diffShape{rows: 120, attrs: 4, maxCard: 3})
	mined, err := MineWith(context.Background(), FPGrowth{}, db, 4)
	if err != nil {
		t.Fatal(err)
	}
	itemsets := make([]Itemset, len(mined))
	for i, p := range mined {
		itemsets[i] = p.Items
	}
	c := BuildCoverIndex(db, itemsets)

	perm := append([]uint8(nil), db.Classes...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	relabeled, err := NewTxDB(db.Data, perm, db.K)
	if err != nil {
		t.Fatal(err)
	}
	for i, is := range itemsets {
		if got, want := c.Refold(i, perm), relabeled.TallyOf(is); got != want {
			t.Fatalf("itemset %v: refold under permuted labels %v want %v", is, got, want)
		}
	}
}

// TestCoverIndexEmptyItemset pins the empty-itemset convention: its
// cover is every row, and its refold is the total tally.
func TestCoverIndexEmptyItemset(t *testing.T) {
	db := randomLabeledTxDB(t, 5, diffShape{rows: 40, attrs: 3, maxCard: 3})
	c := BuildCoverIndex(db, []Itemset{{}})
	if c.Len() != 1 || len(c.Cover(0)) != db.NumRows() {
		t.Fatalf("empty itemset cover has %d rows, want %d", len(c.Cover(0)), db.NumRows())
	}
	if got, want := c.Refold(0, db.Classes), db.TotalTally(); got != want {
		t.Fatalf("empty itemset refold %v want %v", got, want)
	}
}
