package fpm

import (
	"context"
	"fmt"
)

// FPGrowth mines frequent itemsets with the FP-growth algorithm (Han,
// Pei & Yin, SIGMOD'00), generalized so that every tree node carries an
// outcome Tally rather than a scalar count. Conditional pattern bases
// propagate tallies, so each reported pattern comes with the exact class
// counts needed to evaluate divergence metrics — the FP-growth-based
// variant of Algorithm 1. This is the default miner used by the
// experiments, matching the paper's choice.
//
// The implementation is allocation-free in steady state: tree nodes come
// from a mark/release arena, the per-tree header table and item tallies
// live in dense per-item columns owned by reusable per-depth frames, and
// emitted pattern item slices are carved out of an append-only arena.
// The testing.AllocsPerRun guard in fpgrowth_alloc_test.go holds the
// warm-state mine at zero allocations per run.
type FPGrowth struct{}

// Name implements Miner.
func (FPGrowth) Name() string { return "fpgrowth" }

// fpNode is one FP-tree node. Nodes are arena-allocated and live only
// while the conditional tree that owns them is being mined.
type fpNode struct {
	item    Item
	tally   Tally
	parent  *fpNode
	child   *fpNode // first child
	sibling *fpNode // next sibling of parent
	hlink   *fpNode // next node holding the same item
}

// arenaChunkSize is the node count of one arena chunk. Chunks are never
// freed: the arena's high-water mark is the deepest simultaneous set of
// conditional trees, which the mine reuses for every later subproblem.
const arenaChunkSize = 4096

// nodeArena hands out fpNodes from reusable chunks under stack
// discipline: conditional trees are built and torn down LIFO with the
// mine recursion, so releasing back to a mark retires a whole tree at
// once without touching the garbage collector.
type nodeArena struct {
	chunks [][]fpNode
	chunk  int // index of the chunk currently allocated from
	used   int // nodes handed out of that chunk
}

// arenaMark is a rewind point for release.
type arenaMark struct{ chunk, used int }

func (a *nodeArena) mark() arenaMark     { return arenaMark{a.chunk, a.used} }
func (a *nodeArena) release(m arenaMark) { a.chunk, a.used = m.chunk, m.used }
func (a *nodeArena) reset()              { a.chunk, a.used = 0, 0 }

// alloc returns a zeroed node, growing the arena only when every
// existing chunk is exhausted.
func (a *nodeArena) alloc() *fpNode {
	if a.chunk < len(a.chunks) && a.used == len(a.chunks[a.chunk]) {
		a.chunk++
		a.used = 0
	}
	if a.chunk == len(a.chunks) {
		a.grow()
	}
	n := &a.chunks[a.chunk][a.used]
	a.used++
	*n = fpNode{}
	return n
}

// grow appends one chunk to the arena.
//
// lint:ignore hotalloc arena growth runs once per high-water chunk; every later subproblem and mine reuses the capacity
func (a *nodeArena) grow() {
	a.chunks = append(a.chunks, make([]fpNode, arenaChunkSize))
}

// wtx is one weighted transaction of a conditional pattern base: a
// subrange of the owning frame's flat item buffer plus its tally weight.
type wtx struct {
	start, end int32
	w          Tally
}

// mineFrame is the reusable workspace for one FP-tree: dense per-item
// columns (header chains and tallies, reset via the touched list), the
// tree root, and the scratch buffers for building the next conditional
// pattern base. One frame exists per recursion depth and is reused for
// every subproblem that reaches that depth.
type mineFrame struct {
	totals  []Tally   // per-item tally in this tree; nonzero only for touched items
	headers []*fpNode // per-item header chain; non-nil only for inserted items
	touched []Item    // items with nonzero totals, in first-touch order
	items   []Item    // frequent items of this tree, ascending
	flat    []Item    // backing store for the conditional base paths
	base    []wtx     // conditional base transactions over flat
	txBuf   []Item    // one filtered, rank-ordered transaction
	root    fpNode
}

// newMineFrame allocates the dense per-item columns of one frame.
//
// lint:ignore hotalloc frame construction is the pool's cold path: it runs once per recursion-depth high-water mark and the buffers are reused for the rest of the process
func newMineFrame(numItems int) *mineFrame {
	return &mineFrame{
		totals:  make([]Tally, numItems),
		headers: make([]*fpNode, numItems),
	}
}

// clear zeroes the dense columns this frame touched, returning it to
// the all-clean state new frames start in. The scratch slices keep
// their capacity; builds re-cursor them.
func (f *mineFrame) clear() {
	for _, it := range f.touched {
		f.totals[it] = Tally{}
		f.headers[it] = nil
	}
}

// findOrAddChild returns n's child holding it, creating it from the
// arena and linking it into f's header chain when absent.
func (n *fpNode) findOrAddChild(it Item, f *mineFrame, s *mineState) *fpNode {
	for c := n.child; c != nil; c = c.sibling {
		if c.item == it {
			return c
		}
	}
	c := s.arena.alloc()
	c.item = it
	c.parent = n
	c.sibling = n.child
	n.child = c
	c.hlink = f.headers[it]
	f.headers[it] = c
	return c
}

// insert adds one weighted, pre-ordered transaction path to f's tree.
func (f *mineFrame) insert(s *mineState, items []Item, w Tally) {
	n := &f.root
	for _, it := range items {
		n = n.findOrAddChild(it, f, s)
		n.tally.Add(w)
	}
}

// mineState owns every reusable buffer of one mine: the node arena, the
// per-depth frames, the global rank table, the suffix stack, and the
// append-only arena backing emitted pattern item slices. A state serves
// one mine (or one parallel worker) at a time; reusing a warm state
// makes the whole mine allocation-free.
type mineState struct {
	numItems int
	order    []int32 // item -> global insertion rank; -1 when infrequent
	arena    nodeArena
	frames   []*mineFrame
	suffix   []Item // fixed-capacity pattern stack (max depth = NumAttrs+1)
	sufLen   int
	patArena []Item // append-only backing for emitted pattern slices
	anySink  anytimeSink // reusable budgeted sink; its scratch amortizes like the arenas
}

// newMineState sizes a state for a catalog.
//
// lint:ignore hotalloc state construction is per-mine (or per-worker) setup, amortized over the whole mine
func newMineState(numItems, numAttrs int) *mineState {
	return &mineState{
		numItems: numItems,
		order:    make([]int32, numItems),
		suffix:   make([]Item, numAttrs+1),
	}
}

// frameAt returns the reusable frame for one recursion depth.
//
// lint:ignore hotalloc frame acquisition runs once per recursion-depth high-water mark; every later visit to that depth reuses the frame
func (s *mineState) frameAt(depth int) *mineFrame {
	for len(s.frames) <= depth {
		s.frames = append(s.frames, newMineFrame(s.numItems))
	}
	return s.frames[depth]
}

// patternSink consumes one frequent pattern per call during a mine. The
// items slice aliases the miner's reused suffix stack and is valid only
// for the duration of the call: implementations copy what they retain.
// Returning an error aborts the mine.
type patternSink interface {
	emit(items Itemset, t Tally) error
}

// arenaCollector materializes patterns for the batch API: item slices
// are carved out of the state's append-only pattern arena, so a whole
// mine costs a handful of buffer growths instead of one allocation per
// pattern.
type arenaCollector struct {
	s   *mineState
	out []FrequentPattern
}

// emit implements patternSink.
func (c *arenaCollector) emit(items Itemset, t Tally) error {
	start := len(c.s.patArena)
	c.s.patArena = append(c.s.patArena, items...)
	end := len(c.s.patArena)
	c.out = append(c.out, FrequentPattern{Items: Itemset(c.s.patArena[start:end:end]), Tally: t})
	return nil
}

// mineCanceled reports a mine aborted by context cancellation. It is a
// concrete type rather than fmt.Errorf so the loop-hot recursion does
// not box format arguments on its only error path.
type mineCanceled struct{ err error }

func (e mineCanceled) Error() string { return "fpm: mining canceled: " + e.err.Error() }
func (e mineCanceled) Unwrap() error { return e.err }

// Mine implements Miner.
func (g FPGrowth) Mine(db *TxDB, minCount int64) ([]FrequentPattern, error) {
	// lint:ignore ctxflow Mine is the documented no-cancellation compatibility shim over MineContext; callers that can cancel use MineContext directly
	return g.MineContext(context.Background(), db, minCount)
}

// MineContext implements ContextMiner: identical output to Mine, but the
// recursion checks the context at every conditional-tree boundary and
// aborts with an error wrapping ctx.Err() once it is canceled.
//
// lint:hot
func (FPGrowth) MineContext(ctx context.Context, db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	s := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	root := s.buildRoot(db, minCount)
	col := arenaCollector{s: s}
	if err := s.mineAll(ctx, root, 1, minCount, &col); err != nil {
		return nil, err
	}

	// Canonicalize: sort items within each pattern, then sort the output
	// for deterministic downstream consumption.
	out := col.out
	for i := range out {
		sortItems(out[i].Items)
	}
	sortPatterns(out)
	return out, nil
}

// buildRoot rebuilds the initial FP-tree over the database into frame 0:
// global item tallies fix the insertion order (descending support, ties
// by item id), then every row is filtered to frequent items, rank-
// ordered, and inserted. The state's arenas are rewound first, so a warm
// state re-mines without allocating.
func (s *mineState) buildRoot(db *TxDB, minCount int64) *mineFrame {
	f := s.frameAt(0)
	f.clear()
	f.root = fpNode{}
	s.arena.reset()
	s.patArena = s.patArena[:0]
	s.sufLen = 0
	for i := range s.order {
		s.order[i] = -1
	}

	// First pass: global item tallies.
	cat := db.Catalog
	f.touched = f.touched[:0]
	f.items = f.items[:0]
	for r, row := range db.Data.Rows {
		c := db.Classes[r]
		for a, v := range row {
			it := cat.ItemFor(a, v)
			if f.totals[it] == (Tally{}) {
				f.touched = append(f.touched, it)
			}
			f.totals[it][c]++
		}
	}
	for _, it := range f.touched {
		if f.totals[it].Total() >= minCount {
			f.items = append(f.items, it)
		}
	}

	// Global ranks: descending support, ties by item id. Ranks are
	// unique, so the per-transaction order below is total.
	sortItemsByCount(f.items, f.totals)
	for r, it := range f.items {
		s.order[it] = int32(r)
	}
	sortItems(f.items) // ascending iteration order for mining

	// Second pass: insert each row's frequent items in rank order,
	// weighted by a unit tally of the row's class.
	for r, row := range db.Data.Rows {
		f.txBuf = f.txBuf[:0]
		for a, v := range row {
			it := cat.ItemFor(a, v)
			if s.order[it] >= 0 {
				f.txBuf = append(f.txBuf, it)
			}
		}
		if len(f.txBuf) == 0 {
			continue
		}
		sortByOrder(f.txBuf, s.order)
		var w Tally
		w[db.Classes[r]] = 1
		f.insert(s, f.txBuf, w)
	}
	return f
}

// mineAll mines every frequent item of root as an independent
// subproblem, in ascending item order.
func (s *mineState) mineAll(ctx context.Context, root *mineFrame, frameIdx int, minCount int64, sink patternSink) error {
	for _, it := range root.items {
		if err := s.mineSub(ctx, root, frameIdx, it, minCount, sink); err != nil {
			return err
		}
	}
	return nil
}

// mineSub mines one subproblem: emit the pattern suffix+it with its
// tally in parent, build it's conditional tree in the frameIdx-th frame,
// and recurse over the conditional tree's frequent items. The context
// is checked once per subproblem — i.e. at every conditional-tree
// boundary — so cancellation latency is bounded by one tree build, not
// a whole mine.
func (s *mineState) mineSub(ctx context.Context, parent *mineFrame, frameIdx int, it Item, minCount int64, sink patternSink) error {
	if err := ctx.Err(); err != nil {
		return mineCanceled{err}
	}
	s.suffix[s.sufLen] = it
	s.sufLen++
	if err := sink.emit(s.suffix[:s.sufLen], parent.totals[it]); err != nil {
		s.sufLen--
		return err
	}
	child := s.frameAt(frameIdx)
	m := s.arena.mark()
	child.buildFrom(s, parent, it, minCount)
	for _, ci := range child.items {
		if err := s.mineSub(ctx, child, frameIdx+1, ci, minCount, sink); err != nil {
			child.clear()
			s.arena.release(m)
			s.sufLen--
			return err
		}
	}
	child.clear()
	s.arena.release(m)
	s.sufLen--
	return nil
}

// buildFrom fills f with the conditional tree of item it within parent:
// the prefix path of every node holding it, weighted by that node's
// tally, filtered to items frequent within the base and ordered by
// global rank. f must be clean (as clear leaves it).
func (f *mineFrame) buildFrom(s *mineState, parent *mineFrame, it Item, minCount int64) {
	f.flat = f.flat[:0]
	f.base = f.base[:0]
	f.touched = f.touched[:0]
	f.items = f.items[:0]
	f.root = fpNode{}

	// One pass over the header chain collects the base and the
	// conditional item tallies together.
	for n := parent.headers[it]; n != nil; n = n.hlink {
		start := len(f.flat)
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			f.flat = append(f.flat, p.item)
		}
		if len(f.flat) == start {
			continue
		}
		f.base = append(f.base, wtx{start: int32(start), end: int32(len(f.flat)), w: n.tally})
		for _, pi := range f.flat[start:] {
			if f.totals[pi] == (Tally{}) {
				f.touched = append(f.touched, pi)
			}
			f.totals[pi].Add(n.tally)
		}
	}
	for _, ti := range f.touched {
		if f.totals[ti].Total() >= minCount {
			f.items = append(f.items, ti)
		}
	}
	sortItems(f.items)

	// Insert the filtered, rank-ordered paths.
	for _, tx := range f.base {
		f.txBuf = f.txBuf[:0]
		for _, pi := range f.flat[tx.start:tx.end] {
			if f.totals[pi].Total() >= minCount {
				f.txBuf = append(f.txBuf, pi)
			}
		}
		if len(f.txBuf) == 0 {
			continue
		}
		sortByOrder(f.txBuf, s.order)
		f.insert(s, f.txBuf, tx.w)
	}
}

// lessItemsets is the canonical output order: lexicographic by item,
// shorter itemsets first on shared prefixes.
func lessItemsets(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// The sorts below are hand-rolled so the hot path never allocates:
// sort.Slice takes a closure and boxes the slice into an interface,
// both of which are per-call heap traffic.

// sortItems heapsorts items ascending by id. Item ids are distinct
// within every list sorted here, so the order is total and the unstable
// sort is deterministic.
func sortItems(a []Item) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftItems(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftItems(a, 0, i)
	}
}

func siftItems(a []Item, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && a[c+1] > a[c] {
			c++
		}
		if a[i] >= a[c] {
			return
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}

// sortItemsByCount heapsorts items by descending total tally, ties by
// ascending id — the global insertion-rank order.
func sortItemsByCount(a []Item, totals []Tally) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftItemsByCount(a, i, n, totals)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftItemsByCount(a, 0, i, totals)
	}
}

// siftItemsByCount sifts under the max-heap order of lessByCount.
func siftItemsByCount(a []Item, i, n int, totals []Tally) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && lessByCount(a[c], a[c+1], totals) {
			c++
		}
		if !lessByCount(a[i], a[c], totals) {
			return
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}

// lessByCount orders by descending support count, ties by ascending id.
func lessByCount(x, y Item, totals []Tally) bool {
	cx, cy := totals[x].Total(), totals[y].Total()
	if cx != cy {
		return cx > cy
	}
	return x < y
}

// sortByOrder insertion-sorts one transaction's items by their global
// rank. Transactions hold at most one item per attribute, so the input
// is short and insertion sort beats heapsort's constant factor.
func sortByOrder(a []Item, order []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && order[a[j]] < order[a[j-1]]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sortPatterns heapsorts the mined output into the canonical
// lessItemsets order. Patterns are distinct, so the order is total.
func sortPatterns(ps []FrequentPattern) {
	n := len(ps)
	for i := n/2 - 1; i >= 0; i-- {
		siftPatterns(ps, i, n)
	}
	for i := n - 1; i > 0; i-- {
		ps[0], ps[i] = ps[i], ps[0]
		siftPatterns(ps, 0, i)
	}
}

func siftPatterns(ps []FrequentPattern, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && lessItemsets(ps[c].Items, ps[c+1].Items) {
			c++
		}
		if !lessItemsets(ps[i].Items, ps[c].Items) {
			return
		}
		ps[i], ps[c] = ps[c], ps[i]
		i = c
	}
}
