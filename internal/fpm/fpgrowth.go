package fpm

import (
	"context"
	"fmt"
	"sort"
)

// FPGrowth mines frequent itemsets with the FP-growth algorithm (Han,
// Pei & Yin, SIGMOD'00), generalized so that every tree node carries an
// outcome Tally rather than a scalar count. Conditional pattern bases
// propagate tallies, so each reported pattern comes with the exact class
// counts needed to evaluate divergence metrics — the FP-growth-based
// variant of Algorithm 1. This is the default miner used by the
// experiments, matching the paper's choice.
type FPGrowth struct{}

// Name implements Miner.
func (FPGrowth) Name() string { return "fpgrowth" }

type fpNode struct {
	item    Item
	tally   Tally
	parent  *fpNode
	child   *fpNode // first child
	sibling *fpNode // next sibling of parent
	hlink   *fpNode // next node holding the same item
}

// addChild finds or creates the child of n holding item it.
func (n *fpNode) addChild(it Item, headers map[Item]*fpNode) *fpNode {
	for c := n.child; c != nil; c = c.sibling {
		if c.item == it {
			return c
		}
	}
	c := &fpNode{item: it, parent: n}
	c.sibling = n.child
	n.child = c
	c.hlink = headers[it]
	headers[it] = c
	return c
}

// fpTree is an FP-tree plus its header table and per-item total tallies.
type fpTree struct {
	root    *fpNode
	headers map[Item]*fpNode
	totals  map[Item]Tally
	order   map[Item]int // global insertion rank (descending support)
}

// insert adds one weighted, pre-ordered transaction path to the tree.
func (t *fpTree) insert(items []Item, w Tally) {
	n := t.root
	for _, it := range items {
		n = n.addChild(it, t.headers)
		n.tally.Add(w)
	}
}

// weightedTx is a transaction in a conditional pattern base.
type weightedTx struct {
	items []Item
	w     Tally
}

// buildTree constructs an FP-tree from weighted transactions, keeping
// only items whose total support count reaches minCount and ordering
// items within each transaction by the global rank.
func buildTree(txs []weightedTx, minCount int64, order map[Item]int) *fpTree {
	totals := make(map[Item]Tally)
	for _, tx := range txs {
		for _, it := range tx.items {
			tt := totals[it]
			tt.Add(tx.w)
			totals[it] = tt
		}
	}
	for it, tt := range totals {
		if tt.Total() < minCount {
			delete(totals, it)
		}
	}
	t := &fpTree{
		root:    &fpNode{},
		headers: make(map[Item]*fpNode),
		totals:  totals,
		order:   order,
	}
	buf := make([]Item, 0, 16)
	for _, tx := range txs {
		buf = buf[:0]
		for _, it := range tx.items {
			if _, ok := totals[it]; ok {
				buf = append(buf, it)
			}
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool {
			ri, rj := order[buf[i]], order[buf[j]]
			if ri != rj {
				return ri < rj
			}
			return buf[i] < buf[j]
		})
		t.insert(buf, tx.w)
	}
	return t
}

// Mine implements Miner.
func (g FPGrowth) Mine(db *TxDB, minCount int64) ([]FrequentPattern, error) {
	return g.MineContext(context.Background(), db, minCount)
}

// MineContext implements ContextMiner: identical output to Mine, but the
// tree recursion checks the context at every conditional-tree boundary
// and aborts with an error wrapping ctx.Err() once it is canceled.
func (FPGrowth) MineContext(ctx context.Context, db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	cat := db.Catalog

	// First pass: global item tallies, to fix the insertion order
	// (descending support, ties by item id for determinism).
	itemTally := make([]Tally, cat.NumItems())
	for r, row := range db.Data.Rows {
		c := db.Classes[r]
		for a, v := range row {
			itemTally[cat.ItemFor(a, v)][c]++
		}
	}
	type rankedItem struct {
		item  Item
		count int64
	}
	ranked := make([]rankedItem, 0, cat.NumItems())
	for i := range itemTally {
		if cnt := itemTally[i].Total(); cnt >= minCount {
			ranked = append(ranked, rankedItem{Item(i), cnt})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].item < ranked[j].item
	})
	order := make(map[Item]int, len(ranked))
	for r, ri := range ranked {
		order[ri.item] = r
	}

	// Build the initial tree from the dataset rows (weight = unit tally of
	// the row's class).
	txs := make([]weightedTx, 0, db.NumRows())
	rowBuf := make([]Item, 0, cat.NumAttrs())
	for r, row := range db.Data.Rows {
		rowBuf = rowBuf[:0]
		for a, v := range row {
			it := cat.ItemFor(a, v)
			if _, ok := order[it]; ok {
				rowBuf = append(rowBuf, it)
			}
		}
		var w Tally
		w[db.Classes[r]] = 1
		txs = append(txs, weightedTx{items: append([]Item(nil), rowBuf...), w: w})
	}
	tree := buildTree(txs, minCount, order)

	var out []FrequentPattern
	if err := mineTree(ctx, tree, nil, minCount, &out); err != nil {
		return nil, err
	}

	// Canonicalize: sort items within each pattern, then sort the output
	// for deterministic downstream consumption.
	for i := range out {
		sort.Slice(out[i].Items, func(a, b int) bool { return out[i].Items[a] < out[i].Items[b] })
	}
	sort.Slice(out, func(i, j int) bool {
		return lessItemsets(out[i].Items, out[j].Items)
	})
	return out, nil
}

func lessItemsets(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// mineTree recursively mines an FP-tree. suffix is the pattern that
// conditioned this tree; every frequent item in the tree extends it. The
// context is checked once per invocation — i.e. at every conditional-tree
// recursion boundary — so cancellation latency is bounded by the work of
// a single tree level, not a whole mine.
func mineTree(ctx context.Context, t *fpTree, suffix Itemset, minCount int64, out *[]FrequentPattern) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("fpm: mining canceled: %w", err)
	}
	// Deterministic iteration order over header items.
	items := make([]Item, 0, len(t.totals))
	for it := range t.totals {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	for _, it := range items {
		tally := t.totals[it]
		pattern := append(suffix.Clone(), it)
		*out = append(*out, FrequentPattern{Items: pattern, Tally: tally})

		// Conditional pattern base: prefix paths of every node holding it.
		var base []weightedTx
		for n := t.headers[it]; n != nil; n = n.hlink {
			var path []Item
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) == 0 {
				continue
			}
			base = append(base, weightedTx{items: path, w: n.tally})
		}
		if len(base) == 0 {
			continue
		}
		cond := buildTree(base, minCount, t.order)
		if len(cond.totals) > 0 {
			if err := mineTree(ctx, cond, pattern, minCount, out); err != nil {
				return err
			}
		}
	}
	return nil
}
