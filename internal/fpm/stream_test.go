package fpm

import (
	"errors"
	"reflect"
	"testing"
)

func TestMineVisitMatchesMine(t *testing.T) {
	db := randomTxDB(t, 61, 150, 4, 3, 2)
	for _, minCount := range []int64{1, 3, 10} {
		want, err := FPGrowth{}.Mine(db, minCount)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]Tally{}
		err = FPGrowth{}.MineVisit(db, minCount, func(p FrequentPattern) error {
			key := p.Items.Key()
			if _, dup := got[key]; dup {
				t.Fatalf("pattern %v visited twice", p.Items)
			}
			got[key] = p.Tally
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, patternsByKey(want)) {
			t.Fatalf("minCount=%d: streamed output differs (%d vs %d patterns)",
				minCount, len(got), len(want))
		}
	}
}

func TestMineVisitAbortsOnError(t *testing.T) {
	db := smallTxDB(t)
	sentinel := errors.New("stop")
	count := 0
	err := FPGrowth{}.MineVisit(db, 1, func(FrequentPattern) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if count != 3 {
		t.Fatalf("visited %d patterns after abort, want 3", count)
	}
}

func TestMineVisitValidation(t *testing.T) {
	db := smallTxDB(t)
	if err := (FPGrowth{}).MineVisit(db, 0, func(FrequentPattern) error { return nil }); err == nil {
		t.Error("minCount=0 accepted")
	}
	if err := (FPGrowth{}).MineVisit(db, 1, nil); err == nil {
		t.Error("nil visitor accepted")
	}
}

func TestCountFrequent(t *testing.T) {
	db := randomTxDB(t, 62, 200, 4, 3, 2)
	for _, minCount := range []int64{1, 5, 20} {
		want, err := FPGrowth{}.Mine(db, minCount)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountFrequent(db, minCount)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(len(want)) {
			t.Errorf("minCount=%d: CountFrequent = %d, want %d", minCount, got, len(want))
		}
	}
}

// Streaming with a threshold above every support yields nothing and no
// error.
func TestMineVisitEmpty(t *testing.T) {
	db := smallTxDB(t)
	visited := 0
	if err := (FPGrowth{}).MineVisit(db, int64(db.NumRows()+1), func(FrequentPattern) error {
		visited++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited != 0 {
		t.Errorf("visited %d patterns above max support", visited)
	}
}
