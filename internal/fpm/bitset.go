package fpm

import "math/bits"

// bitset is a fixed-capacity bit vector over row indexes, used by the
// Apriori miner's vertical data layout.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// count returns the number of set bits.
func (b bitset) count() int64 {
	var n int64
	for _, w := range b {
		n += int64(bits.OnesCount64(w))
	}
	return n
}

// intersect stores a AND b into dst. All three must have equal length.
func intersect(dst, a, b bitset) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// countAnd returns |a AND b| without materializing the intersection.
func countAnd(a, b bitset) int64 {
	var n int64
	for i := range a {
		n += int64(bits.OnesCount64(a[i] & b[i]))
	}
	return n
}
