package fpm

import (
	"fmt"
	"testing"
	"time"
)

// collectAnytime runs a budgeted mine and materializes the stream.
func collectAnytime(t *testing.T, db *TxDB, minCount int64, budget AnytimeBudget) ([]FrequentPattern, AnytimeInfo) {
	t.Helper()
	var out []FrequentPattern
	info, err := FPGrowth{}.MineAnytimeVisit(db, minCount, budget, func(p FrequentPattern) error {
		out = append(out, FrequentPattern{Items: p.Items.Clone(), Tally: p.Tally})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, info
}

// TestAnytimeUnlimitedMatchesExhaustive: with no budget the anytime mine
// is MineVisit with a different emission order — the same itemset→tally
// map, ReasonExhausted, and a pattern count matching the batch miner.
func TestAnytimeUnlimitedMatchesExhaustive(t *testing.T) {
	for _, sh := range diffShapes(testing.Short()) {
		for _, seed := range []int64{3, 11} {
			t.Run(fmt.Sprintf("rows=%d/attrs=%d/seed=%d", sh.rows, sh.attrs, seed), func(t *testing.T) {
				db := randomLabeledTxDB(t, seed, sh)
				for _, sup := range []float64{0.02, 0.1, 0.4} {
					minCount := MinCount(db.NumRows(), sup)
					want, err := FPGrowth{}.Mine(db, minCount)
					if err != nil {
						t.Fatal(err)
					}
					got, info := collectAnytime(t, db, minCount, AnytimeBudget{})
					if info.Reason != ReasonExhausted {
						t.Fatalf("sup=%v: reason = %s, want exhausted", sup, info.Reason)
					}
					if info.Patterns != int64(len(want)) || len(got) != len(want) {
						t.Fatalf("sup=%v: %d patterns emitted, exhaustive mined %d", sup, len(got), len(want))
					}
					diffPatternMaps(t, patternsByKey(want), patternsByKey(got), "exhaustive", "anytime", sup)
				}
			})
		}
	}
}

// TestAnytimePatternBudget: a budget of b emits exactly min(b, total)
// patterns, each with its exact tally, and reports the right reason.
func TestAnytimePatternBudget(t *testing.T) {
	db := randomLabeledTxDB(t, 5, diffShape{rows: 200, attrs: 5, maxCard: 4})
	minCount := MinCount(db.NumRows(), 0.05)
	full, info := collectAnytime(t, db, minCount, AnytimeBudget{})
	total := int64(len(full))
	if total < 20 {
		t.Fatalf("fixture too small: %d patterns", total)
	}
	for _, b := range []int64{1, 7, total / 2, total, total + 100} {
		got, info := collectAnytime(t, db, minCount, AnytimeBudget{MaxPatterns: b})
		wantN := b
		wantReason := ReasonBudget
		if b >= total {
			wantN, wantReason = total, ReasonExhausted
		}
		if int64(len(got)) != wantN || info.Patterns != wantN {
			t.Errorf("budget %d: emitted %d (info %d), want %d", b, len(got), info.Patterns, wantN)
		}
		if info.Reason != wantReason {
			t.Errorf("budget %d: reason = %s, want %s", b, info.Reason, wantReason)
		}
		for _, p := range got {
			if want := db.TallyOf(p.Items); want != p.Tally {
				t.Errorf("budget %d: itemset %q tally %v, direct scan %v", b, p.Items.Key(), p.Tally, want)
			}
		}
	}
	_ = info
}

// TestAnytimeDeadline: an already-expired deadline stops the mine before
// the first pattern; a generous one lets it run to exhaustion.
func TestAnytimeDeadline(t *testing.T) {
	db := randomLabeledTxDB(t, 5, diffShape{rows: 200, attrs: 5, maxCard: 4})
	minCount := MinCount(db.NumRows(), 0.05)

	got, info := collectAnytime(t, db, minCount, AnytimeBudget{Deadline: time.Now().Add(-time.Second)})
	if len(got) != 0 || info.Reason != ReasonDeadline {
		t.Errorf("expired deadline: %d patterns, reason %s; want 0, deadline", len(got), info.Reason)
	}

	_, info = collectAnytime(t, db, minCount, AnytimeBudget{Deadline: time.Now().Add(time.Hour)})
	if info.Reason != ReasonExhausted {
		t.Errorf("generous deadline: reason %s, want exhausted", info.Reason)
	}
}

// TestAnytimeSupportDescendingOrder: the first emission of each
// top-level subproblem is that item's singleton, and subproblems run
// most-frequent-first — so the subsequence of singleton emissions has
// non-increasing support.
func TestAnytimeSupportDescendingOrder(t *testing.T) {
	db := randomLabeledTxDB(t, 9, diffShape{rows: 400, attrs: 6, maxCard: 5})
	minCount := MinCount(db.NumRows(), 0.02)
	ps, _ := collectAnytime(t, db, minCount, AnytimeBudget{})
	if len(ps) == 0 {
		t.Fatal("no patterns mined")
	}
	if len(ps[0].Items) != 1 {
		t.Fatalf("first emission %q is not a singleton", ps[0].Items.Key())
	}
	last := int64(-1)
	for _, p := range ps {
		if len(p.Items) != 1 {
			continue
		}
		sup := p.Tally.Total()
		if last >= 0 && sup > last {
			t.Fatalf("singleton %q (support %d) emitted after a singleton with support %d",
				p.Items.Key(), sup, last)
		}
		last = sup
	}
}

// TestAnytimeWarmStateReusable: an aborted budgeted mine leaves the warm
// state consistent — the next unlimited mine on the same state is exact.
func TestAnytimeWarmStateReusable(t *testing.T) {
	db := randomLabeledTxDB(t, 5, diffShape{rows: 200, attrs: 5, maxCard: 4})
	minCount := MinCount(db.NumRows(), 0.05)
	want, err := FPGrowth{}.Mine(db, minCount)
	if err != nil {
		t.Fatal(err)
	}
	s := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	count := func(b AnytimeBudget) (int64, []FrequentPattern) {
		var out []FrequentPattern
		info, err := mineAnytime(s, db, minCount, b, func(p FrequentPattern) error {
			out = append(out, FrequentPattern{Items: p.Items.Clone(), Tally: p.Tally})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return info.Patterns, out
	}
	if n, _ := count(AnytimeBudget{MaxPatterns: 3}); n != 3 {
		t.Fatalf("budgeted warm mine emitted %d, want 3", n)
	}
	n, got := count(AnytimeBudget{})
	if n != int64(len(want)) {
		t.Fatalf("post-abort unlimited mine emitted %d, want %d", n, len(want))
	}
	diffPatternMaps(t, patternsByKey(want), patternsByKey(got), "exhaustive", "anytime-warm", 0.05)
}

func TestSampleRows(t *testing.T) {
	db := randomLabeledTxDB(t, 21, diffShape{rows: 300, attrs: 4, maxCard: 4})

	// n >= rows or n <= 0: the original database comes back untouched.
	if got := SampleRows(db, 300, 1); got != db {
		t.Error("full-size sample did not return the original db")
	}
	if got := SampleRows(db, 0, 1); got != db {
		t.Error("n=0 did not return the original db")
	}

	s1 := SampleRows(db, 120, 7)
	s2 := SampleRows(db, 120, 7)
	if s1.NumRows() != 120 || len(s1.Classes) != 120 {
		t.Fatalf("sample has %d rows, %d classes", s1.NumRows(), len(s1.Classes))
	}
	if s1.Catalog != db.Catalog {
		t.Error("sample does not share the catalog")
	}
	for r := range s1.Data.Rows {
		if &s1.Data.Rows[r][0] != &s2.Data.Rows[r][0] || s1.Classes[r] != s2.Classes[r] {
			t.Fatal("same seed produced different samples")
		}
	}
	s3 := SampleRows(db, 120, 8)
	same := true
	for r := range s1.Data.Rows {
		if &s1.Data.Rows[r][0] != &s3.Data.Rows[r][0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}

	// The sample's total tally is dominated by the full database's.
	full, sub := db.TotalTally(), s1.TotalTally()
	for c := range full {
		if sub[c] > full[c] {
			t.Errorf("class %d: sample count %d exceeds full count %d", c, sub[c], full[c])
		}
	}
	if sub.Total() != 120 {
		t.Errorf("sample tally total = %d, want 120", sub.Total())
	}
}

// TestAnytimeSteadyStateAllocFree extends the zero-allocation contract
// to the budgeted path: a warm state driving an anytimeSink — budget
// checks, deadline polls and all — emits every pattern without
// allocating.
func TestAnytimeSteadyStateAllocFree(t *testing.T) {
	db := smallTxDB(t)
	s := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	budget := AnytimeBudget{Deadline: time.Now().Add(time.Hour), MaxPatterns: 1 << 40}
	var n int64
	visit := func(FrequentPattern) error { n++; return nil }
	runOnce := func() {
		n = 0
		info, err := mineAnytime(s, db, 1, budget, visit)
		if err != nil {
			t.Fatal(err)
		}
		if info.Reason != ReasonExhausted {
			t.Fatalf("reason = %s, want exhausted", info.Reason)
		}
	}

	runOnce()
	want := n
	if want == 0 {
		t.Fatal("warm-up anytime mine produced no patterns; fixture db is unusable")
	}
	runOnce()
	if n != want {
		t.Fatalf("re-mine produced %d patterns, want %d", n, want)
	}

	if allocs := testing.AllocsPerRun(10, runOnce); allocs != 0 {
		t.Errorf("steady-state anytime mine allocates %v allocs/run, want 0", allocs)
	}
}
