package fpm

import (
	"context"
	"testing"
)

// TestMineSteadyStateAllocFree locks in the zero-allocation contract the
// hotalloc analyzer enforces statically: once a mineState is warm (node
// arena, frames, and pattern arena grown to their high-water marks), a
// full mine — root tree build plus the whole conditional-tree recursion
// and pattern emission — performs zero heap allocations.
func TestMineSteadyStateAllocFree(t *testing.T) {
	db := smallTxDB(t)
	s := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	var col arenaCollector
	col.s = s
	ctx := context.Background()
	runOnce := func() {
		col.out = col.out[:0]
		root := s.buildRoot(db, 1)
		if err := s.mineAll(ctx, root, 1, 1, &col); err != nil {
			t.Fatal(err)
		}
	}

	// Warm runs: grow every pool to its high-water mark and pin the
	// expected output size.
	runOnce()
	want := len(col.out)
	if want == 0 {
		t.Fatal("warm-up mine produced no patterns; fixture db is unusable")
	}
	runOnce()
	if len(col.out) != want {
		t.Fatalf("re-mine produced %d patterns, want %d", len(col.out), want)
	}

	if allocs := testing.AllocsPerRun(10, runOnce); allocs != 0 {
		t.Errorf("steady-state mine allocates %v allocs/run, want 0", allocs)
	}
}

// TestStreamSteadyStateAllocFree is the streaming-path variant: a warm
// state driving a visitorSink emits every pattern without allocating.
func TestStreamSteadyStateAllocFree(t *testing.T) {
	db := smallTxDB(t)
	s := newMineState(db.Catalog.NumItems(), db.Catalog.NumAttrs())
	var n int
	sink := visitorSink{visit: func(FrequentPattern) error {
		n++
		return nil
	}}
	ctx := context.Background()
	runOnce := func() {
		n = 0
		root := s.buildRoot(db, 1)
		if err := s.mineAll(ctx, root, 1, 1, &sink); err != nil {
			t.Fatal(err)
		}
	}

	runOnce()
	want := n
	if want == 0 {
		t.Fatal("warm-up stream produced no patterns; fixture db is unusable")
	}
	runOnce()
	if n != want {
		t.Fatalf("re-stream produced %d patterns, want %d", n, want)
	}

	if allocs := testing.AllocsPerRun(10, runOnce); allocs != 0 {
		t.Errorf("steady-state stream allocates %v allocs/run, want 0", allocs)
	}
}
