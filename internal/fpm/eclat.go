package fpm

import (
	"fmt"
	"sort"
)

// Eclat mines frequent itemsets with the Eclat algorithm (Zaki, 2000):
// a depth-first search over a vertical layout where each itemset carries
// its tidset (sorted row-id list), and candidate tidsets are computed by
// ordered intersection. Tallies are accumulated from the per-row outcome
// classes during intersection, so Eclat is a third drop-in Algorithm 1
// backend alongside Apriori and FP-growth. Its sorted-slice tidsets often
// beat Apriori's bitsets on sparse, low-support workloads and beat
// FP-growth on small schemas; the miner-ablation benchmark quantifies
// this.
type Eclat struct{}

// Name implements Miner.
func (Eclat) Name() string { return "eclat" }

// eclatEntry is one itemset in the current equivalence class, with its
// tidset.
type eclatEntry struct {
	items Itemset
	tids  []int32
}

// Mine implements Miner.
func (Eclat) Mine(db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("fpm: minCount %d < 1", minCount)
	}
	cat := db.Catalog

	// Build vertical layout: tidset per item (row ids ascending because
	// rows are scanned in order).
	tidsets := make([][]int32, cat.NumItems())
	for r, row := range db.Data.Rows {
		for a, v := range row {
			it := cat.ItemFor(a, v)
			tidsets[it] = append(tidsets[it], int32(r))
		}
	}

	tallyOf := func(tids []int32) Tally {
		var t Tally
		for _, r := range tids {
			t[db.Classes[r]]++
		}
		return t
	}

	var out []FrequentPattern
	var root []eclatEntry
	for it := 0; it < cat.NumItems(); it++ {
		tids := tidsets[it]
		if int64(len(tids)) < minCount {
			continue
		}
		items := Itemset{Item(it)}
		out = append(out, FrequentPattern{Items: items, Tally: tallyOf(tids)})
		root = append(root, eclatEntry{items: items, tids: tids})
	}

	// Depth-first: extend each entry with the later entries of its class.
	var extend func(class []eclatEntry)
	extend = func(class []eclatEntry) {
		for i := 0; i < len(class); i++ {
			var next []eclatEntry
			base := class[i]
			lastAttr := cat.Attr(base.items[len(base.items)-1])
			for j := i + 1; j < len(class); j++ {
				other := class[j]
				otherItem := other.items[len(other.items)-1]
				// Same-attribute items can never co-occur.
				if cat.Attr(otherItem) == lastAttr {
					continue
				}
				tids := intersectTids(base.tids, other.tids)
				if int64(len(tids)) < minCount {
					continue
				}
				cand := append(base.items.Clone(), otherItem)
				out = append(out, FrequentPattern{Items: cand, Tally: tallyOf(tids)})
				next = append(next, eclatEntry{items: cand, tids: tids})
			}
			if len(next) > 1 {
				extend(next)
			} else if len(next) == 1 {
				// Single entry: nothing to pair it with.
				continue
			}
		}
	}
	extend(root)

	sort.Slice(out, func(i, j int) bool { return lessItemsets(out[i].Items, out[j].Items) })
	return out, nil
}

// intersectTids intersects two ascending row-id lists.
func intersectTids(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
