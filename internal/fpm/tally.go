package fpm

import (
	"context"
	"fmt"

	"repro/internal/dataset"
)

// MaxClasses bounds the number of outcome classes a transaction database
// can carry. Classifier analysis uses 4 (the confusion cells); a generic
// Boolean outcome function uses 3 (T, F, ⊥).
const MaxClasses = 8

// Tally is the per-itemset vector of outcome-class counts that Algorithm 1
// threads through the mining process. Index c counts the covered rows
// whose outcome class is c. The itemset's support count is the total.
type Tally [MaxClasses]int64

// Add accumulates another tally into t.
func (t *Tally) Add(o Tally) {
	for i := range t {
		t[i] += o[i]
	}
}

// AddClass increments the count of class c by n.
func (t *Tally) AddClass(c uint8, n int64) { t[c] += n }

// Total returns the support count: the sum over all classes.
func (t Tally) Total() int64 {
	var s int64
	for _, v := range t {
		s += v
	}
	return s
}

// Masked returns the sum of counts over the classes selected by mask
// (bit c set means class c is included).
func (t Tally) Masked(mask uint16) int64 {
	var s int64
	for c := 0; c < MaxClasses; c++ {
		if mask&(1<<c) != 0 {
			s += t[c]
		}
	}
	return s
}

// TxDB is a transaction database: the dataset rows, each labelled with an
// outcome class in [0, K). It is the input to all miners.
type TxDB struct {
	Catalog *Catalog
	Data    *dataset.Dataset
	Classes []uint8 // per-row outcome class
	K       int     // number of classes in use
}

// NewTxDB builds a transaction database over the dataset with the given
// per-row outcome classes.
func NewTxDB(d *dataset.Dataset, classes []uint8, k int) (*TxDB, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(classes) != d.NumRows() {
		return nil, fmt.Errorf("fpm: %d class labels for %d rows", len(classes), d.NumRows())
	}
	if k < 1 || k > MaxClasses {
		return nil, fmt.Errorf("fpm: class count %d out of range [1,%d]", k, MaxClasses)
	}
	for i, c := range classes {
		if int(c) >= k {
			return nil, fmt.Errorf("fpm: row %d has class %d >= K=%d", i, c, k)
		}
	}
	return &TxDB{Catalog: NewCatalog(d), Data: d, Classes: classes, K: k}, nil
}

// NumRows returns the number of transactions.
func (db *TxDB) NumRows() int { return db.Data.NumRows() }

// TotalTally returns the tally of the whole database (the empty itemset).
func (db *TxDB) TotalTally() Tally {
	var t Tally
	for _, c := range db.Classes {
		t[c]++
	}
	return t
}

// Covers reports whether row r is covered by itemset is.
func (db *TxDB) Covers(r int, is Itemset) bool {
	row := db.Data.Rows[r]
	for _, it := range is {
		a := db.Catalog.Attr(it)
		if row[a] != db.Catalog.Value(it) {
			return false
		}
	}
	return true
}

// SupportSet returns the row indexes covered by the itemset — the
// support-set D(I) of Sec. 3.1. Intended for reporting and tests, not for
// the mining hot path.
func (db *TxDB) SupportSet(is Itemset) []int {
	var rows []int
	for r := range db.Data.Rows {
		if db.Covers(r, is) {
			rows = append(rows, r)
		}
	}
	return rows
}

// TallyOf computes the tally of an itemset by a direct scan. Intended for
// tests and one-off queries; miners compute tallies incrementally.
func (db *TxDB) TallyOf(is Itemset) Tally {
	var t Tally
	for r := range db.Data.Rows {
		if db.Covers(r, is) {
			t[db.Classes[r]]++
		}
	}
	return t
}

// FrequentPattern is one mined itemset together with its outcome tally.
type FrequentPattern struct {
	Items Itemset
	Tally Tally
}

// Miner extracts all itemsets whose support count is at least
// minCount, along with their tallies. Implementations must be sound and
// complete in the sense of Theorem 5.1. The empty itemset is not
// reported; its tally is TxDB.TotalTally.
type Miner interface {
	// Name identifies the algorithm, e.g. "apriori" or "fpgrowth".
	Name() string
	// Mine returns all frequent patterns with support count >= minCount.
	// minCount must be at least 1.
	Mine(db *TxDB, minCount int64) ([]FrequentPattern, error)
}

// ContextMiner is implemented by miners that honor cancellation: when the
// context is canceled or its deadline passes, MineContext stops mining at
// the next tree-recursion boundary and returns an error wrapping
// ctx.Err(). The async job engine and the HTTP server use this so a
// canceled job or a disconnected client stops burning CPU.
type ContextMiner interface {
	Miner
	// MineContext is Mine under a context. A successful run returns
	// exactly what Mine would.
	MineContext(ctx context.Context, db *TxDB, minCount int64) ([]FrequentPattern, error)
}

// MineWith runs miner m under ctx when m supports cancellation and falls
// back to a plain Mine otherwise, so callers can thread a context without
// caring which miner they were configured with.
func MineWith(ctx context.Context, m Miner, db *TxDB, minCount int64) ([]FrequentPattern, error) {
	if cm, ok := m.(ContextMiner); ok {
		return cm.MineContext(ctx, db, minCount)
	}
	return m.Mine(db, minCount)
}

// MinCount converts a relative support threshold s into the minimum
// absolute support count over n rows: the smallest integer c with
// c/n >= s, but at least 1.
func MinCount(n int, s float64) int64 {
	if s <= 0 {
		return 1
	}
	c := int64(float64(n) * s)
	// Round up unless s*n is (numerically) integral.
	if float64(c) < float64(n)*s-1e-9 {
		c++
	}
	if float64(c)/float64(n) < s-1e-12 {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}
