package fpm

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func smallDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("color", "size", "shape")
	for _, rec := range [][]string{
		{"red", "S", "round"},
		{"red", "M", "square"},
		{"blue", "S", "round"},
		{"blue", "M", "round"},
		{"red", "S", "square"},
		{"green", "L", "round"},
	} {
		if err := b.Add(rec...); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCatalogMapping(t *testing.T) {
	d := smallDataset(t)
	c := NewCatalog(d)
	if got, want := c.NumItems(), 3+3+2; got != want {
		t.Fatalf("NumItems = %d, want %d", got, want)
	}
	if got := c.NumAttrs(); got != 3 {
		t.Fatalf("NumAttrs = %d, want 3", got)
	}
	for i := 0; i < c.NumItems(); i++ {
		it := Item(i)
		a, v := c.Attr(it), c.Value(it)
		if got := c.ItemFor(a, v); got != it {
			t.Errorf("round trip item %d -> (%d,%d) -> %d", i, a, v, got)
		}
		back, err := c.ItemByName(c.Name(it))
		if err != nil || back != it {
			t.Errorf("name round trip for %q: %v, %v", c.Name(it), back, err)
		}
	}
}

func TestCatalogItemByNameErrors(t *testing.T) {
	c := NewCatalog(smallDataset(t))
	for _, s := range []string{"noequals", "ghost=1", "color=purple"} {
		if _, err := c.ItemByName(s); err == nil {
			t.Errorf("ItemByName(%q) succeeded, want error", s)
		}
	}
}

func TestItemsetByNames(t *testing.T) {
	c := NewCatalog(smallDataset(t))
	is, err := c.ItemsetByNames("size=S", "color=red")
	if err != nil {
		t.Fatal(err)
	}
	if len(is) != 2 || is[0] > is[1] {
		t.Fatalf("ItemsetByNames = %v, want sorted pair", is)
	}
	if _, err := c.ItemsetByNames("color=red", "color=blue"); err == nil {
		t.Error("duplicate attribute accepted, want error")
	}
}

func TestItemsetKeyRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		is := make(Itemset, len(raw))
		for i, r := range raw {
			is[i] = Item(r)
		}
		is = is.Sorted()
		return ParseKey(is.Key()).Equal(is)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestItemsetOps(t *testing.T) {
	a := Itemset{1, 3, 5}
	if !a.Contains(3) || a.Contains(2) || a.Contains(9) {
		t.Error("Contains misbehaves")
	}
	if !a.ContainsAll(Itemset{1, 5}) || a.ContainsAll(Itemset{1, 2}) {
		t.Error("ContainsAll misbehaves")
	}
	if got := a.Without(3); !got.Equal(Itemset{1, 5}) {
		t.Errorf("Without = %v", got)
	}
	if got := a.Without(99); !got.Equal(a) {
		t.Errorf("Without(absent) = %v", got)
	}
	if got := a.Union(Itemset{2, 3}); !got.Equal(Itemset{1, 2, 3, 5}) {
		t.Errorf("Union = %v", got)
	}
	empty := Itemset{}
	if got := empty.Union(empty); len(got) != 0 {
		t.Errorf("empty Union = %v", got)
	}
}

func TestItemsetSubsets(t *testing.T) {
	a := Itemset{1, 2, 3}
	var seen []string
	a.Subsets(func(s Itemset) { seen = append(seen, s.Clone().Key()) })
	// Proper non-empty subsets of a 3-set: 2^3 - 2 = 6.
	if len(seen) != 6 {
		t.Fatalf("got %d subsets, want 6", len(seen))
	}
	uniq := map[string]bool{}
	for _, k := range seen {
		uniq[k] = true
	}
	if len(uniq) != 6 {
		t.Error("duplicate subsets emitted")
	}
	// Singleton and empty sets: no subsets visited.
	count := 0
	Itemset{7}.Subsets(func(Itemset) { count++ })
	Itemset{}.Subsets(func(Itemset) { count++ })
	if count != 0 {
		t.Errorf("singleton/empty visited %d subsets, want 0", count)
	}
}

func TestRowItemsAndFormat(t *testing.T) {
	d := smallDataset(t)
	c := NewCatalog(d)
	is := c.RowItems(d.Rows[0])
	if len(is) != 3 {
		t.Fatalf("RowItems len = %d, want 3", len(is))
	}
	if !sort.SliceIsSorted(is, func(i, j int) bool { return is[i] < is[j] }) {
		t.Error("RowItems not sorted")
	}
	s := c.Format(is)
	if s == "" || s == "{}" {
		t.Errorf("Format = %q", s)
	}
	if got := c.Format(nil); got != "{}" {
		t.Errorf("Format(nil) = %q, want {}", got)
	}
}

func TestCatalogAttrs(t *testing.T) {
	d := smallDataset(t)
	c := NewCatalog(d)
	is, err := c.ItemsetByNames("shape=round", "color=red")
	if err != nil {
		t.Fatal(err)
	}
	attrs := c.Attrs(is)
	if len(attrs) != 2 || attrs[0] != 0 || attrs[1] != 2 {
		t.Errorf("Attrs = %v, want [0 2]", attrs)
	}
}

func TestCatalogPanics(t *testing.T) {
	c := NewCatalog(smallDataset(t))
	for _, fn := range []func(){
		func() { c.ItemFor(-1, 0) },
		func() { c.ItemFor(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
