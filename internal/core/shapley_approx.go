package core

import (
	"fmt"
	"math/rand"

	"repro/internal/fpm"
)

// ApproxShapleyConfig controls the Monte Carlo estimator.
type ApproxShapleyConfig struct {
	// Permutations is the number of sampled item orderings (default 200).
	Permutations int
	// Seed drives the permutation sampling.
	Seed int64
}

// ApproxLocalShapley estimates the item contributions Δ(α|I) by sampling
// random permutations of the itemset and averaging marginal gains — the
// classical unbiased Monte Carlo estimator of the Shapley value. Exact
// computation (LocalShapley) enumerates 2^|I| subsets, which is fine for
// the ≤ 21-attribute datasets of the paper but not for wide schemas;
// this estimator runs in O(permutations · |I|) lookups instead.
//
// The estimate preserves the efficiency axiom exactly: for every sampled
// permutation the marginal gains telescope to Δ(I), so the averaged
// contributions still sum to Δ(I).
func (r *Result) ApproxLocalShapley(is fpm.Itemset, m Metric, cfg ApproxShapleyConfig) ([]Contribution, error) {
	if len(is) == 0 {
		return nil, fmt.Errorf("core: Shapley of the empty itemset")
	}
	if _, ok := r.Lookup(is); !ok {
		return nil, fmt.Errorf("core: itemset %s not frequent at support %v",
			r.DB.Catalog.Format(is), r.MinSup)
	}
	if cfg.Permutations <= 0 {
		cfg.Permutations = 200
	}
	n := len(is)
	rng := rand.New(rand.NewSource(cfg.Seed))

	divOf := func(subset fpm.Itemset) (float64, error) {
		if len(subset) == 0 {
			return 0, nil
		}
		p, ok := r.Lookup(subset.Sorted())
		if !ok {
			return 0, fmt.Errorf("core: subset %s of frequent itemset missing from index",
				r.DB.Catalog.Format(subset))
		}
		return r.DivergenceOfTally(p.Tally, m), nil
	}

	sums := make([]float64, n)
	perm := make([]int, n)
	prefix := make(fpm.Itemset, 0, n)
	for p := 0; p < cfg.Permutations; p++ {
		copy(perm, rng.Perm(n))
		prefix = prefix[:0]
		prev := 0.0
		for _, pos := range perm {
			prefix = append(prefix, is[pos])
			cur, err := divOf(prefix)
			if err != nil {
				return nil, err
			}
			sums[pos] += cur - prev
			prev = cur
		}
	}
	out := make([]Contribution, n)
	for i := range out {
		out[i] = Contribution{Item: is[i], Value: sums[i] / float64(cfg.Permutations)}
	}
	return out, nil
}
