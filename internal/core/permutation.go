package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/fpm"
	"repro/internal/permtest"
	"repro/internal/stats"
)

// Permutation-grounded significance (DESIGN.md §15). The analytic
// Benjamini–Hochberg pass in significance.go treats the itemset tests
// as if they were independent; overlapping itemsets are anything but.
// The machinery here resamples instead: outcome labels are permuted
// (covers are invariant, so each permutation is one tally re-fold via
// internal/permtest), and either the Westfall–Young step-down max-T
// construction controls the family-wise error rate under the true
// dependence structure, or BH runs over the raw permutation p-values
// (permutation FDR).

// PermutationOutcome is one full permutation test over every pattern on
// which the metric is defined.
type PermutationOutcome struct {
	// Tested annotates each hypothesis — in mining order — with its raw
	// permutation p-value (P) and Westfall–Young adjusted p-value (AdjP).
	Tested []Significant
	// Permutations is the number actually run; Exhaustive marks the
	// exact small-N enumeration regime.
	Permutations int
	Exhaustive   bool
}

// PermutationTest runs Westfall–Young max-T permutation testing over
// the Welch statistics of every mined pattern on which the metric is
// defined (the same hypothesis set RankAll scores). The context cancels
// the permutation schedule within one permutation per worker.
func (r *Result) PermutationTest(ctx context.Context, m Metric, cfg permtest.Config) (*PermutationOutcome, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	itemsets := make([]fpm.Itemset, 0, len(r.Patterns))
	ranked := make([]Ranked, 0, len(r.Patterns))
	for _, p := range r.Patterns {
		if rk, ok := r.ranked(p, m); ok {
			itemsets = append(itemsets, p.Items)
			ranked = append(ranked, rk)
		}
	}
	eng, err := permtest.New(r.DB, itemsets, m.Pos, m.Neg)
	if err != nil {
		return nil, fmt.Errorf("core: permutation test: %w", err)
	}
	pr, err := eng.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &PermutationOutcome{
		Tested:       make([]Significant, len(ranked)),
		Permutations: pr.Permutations,
		Exhaustive:   pr.Exhaustive,
	}
	for i, rk := range ranked {
		out.Tested[i] = Significant{Ranked: rk, P: pr.RawP[i], AdjP: pr.AdjP[i]}
	}
	return out, nil
}

// SignificantPatternsWY returns the patterns surviving Westfall–Young
// family-wise error control at level alpha, sorted by the given order.
// It is the permutation-grounded counterpart of SignificantPatterns:
// AdjP is the step-down max-T adjusted p-value, valid under the
// dependence between overlapping itemsets.
func (r *Result) SignificantPatternsWY(ctx context.Context, m Metric, alpha float64, order RankOrder, cfg permtest.Config) ([]Significant, error) {
	po, err := r.PermutationTest(ctx, m, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Significant, 0, len(po.Tested))
	for _, s := range po.Tested {
		if s.AdjP <= alpha {
			out = append(out, s)
		}
	}
	sortSignificant(out, order)
	return out, nil
}

// SignificantPatternsPermFDR returns the patterns surviving
// Benjamini–Hochberg FDR control at level q over the raw permutation
// p-values, sorted by the given order — analytic-free FDR: the per-test
// p-values come from resampling, only the multiplicity correction is
// BH. AdjP carries the BH-adjusted permutation p-value.
func (r *Result) SignificantPatternsPermFDR(ctx context.Context, m Metric, q float64, order RankOrder, cfg permtest.Config) ([]Significant, error) {
	po, err := r.PermutationTest(ctx, m, cfg)
	if err != nil {
		return nil, err
	}
	pvals := make([]float64, len(po.Tested))
	for i, s := range po.Tested {
		pvals[i] = s.P
	}
	reject, adjusted := stats.BenjaminiHochberg(pvals, q)
	out := make([]Significant, 0, len(po.Tested))
	for i, s := range po.Tested {
		if reject[i] {
			s.AdjP = adjusted[i]
			out = append(out, s)
		}
	}
	sortSignificant(out, order)
	return out, nil
}

// sortSignificant orders significant patterns with the RankAll
// comparator, so every significance API reports in ranking order.
func sortSignificant(out []Significant, order RankOrder) {
	sort.Slice(out, func(i, j int) bool {
		return lessRankedBy(out[i].Ranked, out[j].Ranked, order)
	})
}

// MaxEntBaseline is the independence-model significance baseline of a
// pattern's support: how far the observed support deviates from the
// maximum-entropy (independence) model over the pattern's items, fit by
// IPF on the singleton marginals. A pattern whose support the
// independence model already explains (large P) is structurally
// unremarkable no matter how divergent its outcome rate; a tiny P marks
// genuine item interaction.
type MaxEntBaseline struct {
	ExpectedSupport float64 // model-expected relative support
	Observed        float64 // observed relative support
	Leverage        float64 // observed − expected
	P               float64 // two-sided binomial tail under the model
	Iterations      int     // IPF sweeps to convergence
}

// MaxEntBaselineOf fits the baseline for one frequent itemset. Every
// singleton of a frequent itemset is itself frequent (downward
// closure), so the marginals are always available from the result.
func (r *Result) MaxEntBaselineOf(is fpm.Itemset) (MaxEntBaseline, error) {
	if len(is) == 0 {
		return MaxEntBaseline{}, fmt.Errorf("core: max-entropy baseline of the empty itemset is trivial")
	}
	p, ok := r.Lookup(is)
	if !ok {
		return MaxEntBaseline{}, fmt.Errorf("core: itemset %s not frequent at support %v",
			r.DB.Catalog.Format(is), r.MinSup)
	}
	n := int64(r.DB.NumRows())
	marg := make([]float64, 0, len(is))
	for _, it := range is {
		sp, ok := r.Lookup(fpm.Itemset{it})
		if !ok {
			return MaxEntBaseline{}, fmt.Errorf("core: singleton %s missing from the result (corrupt pattern set?)",
				r.DB.Catalog.Format(fpm.Itemset{it}))
		}
		pj := float64(sp.Tally.Total()) / float64(n)
		if pj >= 1 {
			continue // a universal item constrains nothing
		}
		marg = append(marg, pj)
	}
	expected, iters := 1.0, 0
	if len(marg) > 0 {
		cells, it, err := stats.MaxEntIPF(marg, 0, 0)
		if err != nil {
			return MaxEntBaseline{}, fmt.Errorf("core: max-entropy fit: %w", err)
		}
		expected = cells[len(cells)-1]
		iters = it
	}
	obsCount := p.Tally.Total()
	observed := float64(obsCount) / float64(n)
	return MaxEntBaseline{
		ExpectedSupport: expected,
		Observed:        observed,
		Leverage:        observed - expected,
		P:               stats.BinomialTwoSidedP(n, obsCount, expected),
		Iterations:      iters,
	}, nil
}
