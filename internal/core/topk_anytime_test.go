package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/fpm"
)

// datagenDB draws a seeded random labelled dataset (the same generator
// the fpm differential suite uses) and wraps it as a confusion-class
// transaction database.
func datagenDB(t testing.TB, seed int64, rows, attrs, maxCard int) *fpm.TxDB {
	t.Helper()
	g, err := datagen.Random(seed, datagen.RandomConfig{Rows: rows, Attrs: attrs, MaxCard: maxCard})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := ConfusionClasses(g.Truth, g.Pred)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fpm.NewTxDB(g.Data, classes, NumConfusionClasses)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAnytimeTopKByteIdenticalToExhaustive is the anytime arm of the
// differential harness: at unlimited budget the streamed top-K must be
// byte-identical — itemsets, tallies, and every float — to the
// exhaustive Result.TopK, across dataset shapes, supports, orders and
// k. The shared total order makes the top-k set unique, so the
// support-descending visit order cannot leak into the answer.
func TestAnytimeTopKByteIdenticalToExhaustive(t *testing.T) {
	shapes := []struct{ rows, attrs, maxCard int }{
		{60, 3, 3},
		{200, 4, 4},
		{400, 5, 3},
	}
	if !testing.Short() {
		shapes = append(shapes, struct{ rows, attrs, maxCard int }{800, 6, 4})
	}
	for _, sh := range shapes {
		for _, seed := range []int64{2, 19} {
			db := datagenDB(t, seed, sh.rows, sh.attrs, sh.maxCard)
			for _, sup := range []float64{0.02, 0.1, 0.3} {
				fullAtSup := explore(t, db, sup)
				for _, order := range []RankOrder{ByDivergence, ByAbsDivergence, ByNegDivergence} {
					for _, k := range []int{1, 5, 25} {
						want := fullAtSup.TopK(ErrorRate, k, order)
						got, err := ExploreTopKAnytime(db, sup, ErrorRate, k, order, AnytimeOptions{})
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("seed=%d rows=%d sup=%v order=%v k=%d", seed, sh.rows, sup, order, k)
						if got.Reason != fpm.ReasonExhausted || got.Partial() {
							t.Fatalf("%s: unbudgeted run reported reason %s", label, got.Reason)
						}
						if len(got.Top) != len(want) {
							t.Fatalf("%s: %d patterns, want %d", label, len(got.Top), len(want))
						}
						for i := range want {
							if !reflect.DeepEqual(got.Top[i].Ranked, want[i]) {
								t.Fatalf("%s: rank %d differs\n got %+v\nwant %+v",
									label, i, got.Top[i].Ranked, want[i])
							}
							e := got.Top[i]
							if e.SupportLo != e.Support || e.SupportHi != e.Support ||
								e.RateLo != e.Rate || e.RateHi != e.Rate ||
								e.DivergenceLo != e.Divergence || e.DivergenceHi != e.Divergence {
								t.Fatalf("%s: exact run has non-degenerate bounds: %+v", label, e)
							}
						}
					}
				}
			}
		}
	}
}

// TestAnytimeTopKBudgetSubset: under any pattern budget the reported
// patterns must be a truthful subset — each one frequent in the full
// result, with support, rate, divergence and t exactly as the
// exhaustive exploration computes them. Budgets may hide patterns; they
// must never distort one.
func TestAnytimeTopKBudgetSubset(t *testing.T) {
	db := datagenDB(t, 13, 300, 5, 4)
	const sup = 0.05
	full := explore(t, db, sup)
	unlimited, err := ExploreTopKAnytime(db, sup, ErrorRate, 10, ByAbsDivergence, AnytimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int64{1, 3, 10, 50, 1 << 30} {
		got, err := ExploreTopKAnytime(db, sup, ErrorRate, 10, ByAbsDivergence,
			AnytimeOptions{Budget: fpm.AnytimeBudget{MaxPatterns: b}})
		if err != nil {
			t.Fatal(err)
		}
		if b < unlimited.Visited {
			if got.Reason != fpm.ReasonBudget || got.Visited != b {
				t.Errorf("budget %d: reason %s after %d patterns, want budget after %d",
					b, got.Reason, got.Visited, b)
			}
		} else if got.Reason != fpm.ReasonExhausted {
			t.Errorf("budget %d ≥ total %d: reason %s, want exhausted", b, unlimited.Visited, got.Reason)
		}
		if len(got.Top) == 0 || len(got.Top) > 10 {
			t.Errorf("budget %d: %d patterns reported", b, len(got.Top))
		}
		for _, e := range got.Top {
			want, err := full.Describe(e.Items, ErrorRate)
			if err != nil {
				t.Errorf("budget %d: reported pattern %v is not in the exhaustive result: %v", b, e.Items, err)
				continue
			}
			if !reflect.DeepEqual(e.Ranked, want) {
				t.Errorf("budget %d: pattern %v stats\n got %+v\nwant %+v", b, e.Items, e.Ranked, want)
			}
		}
	}
}

// TestAnytimeTopKDeadline: an expired deadline yields an empty partial
// answer; a generous one runs to exhaustion.
func TestAnytimeTopKDeadline(t *testing.T) {
	db := datagenDB(t, 13, 300, 5, 4)
	got, err := ExploreTopKAnytime(db, 0.05, ErrorRate, 10, ByAbsDivergence,
		AnytimeOptions{Budget: fpm.AnytimeBudget{Deadline: time.Now().Add(-time.Second)}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != fpm.ReasonDeadline || !got.Partial() || len(got.Top) != 0 {
		t.Fatalf("expired deadline: reason %s, %d patterns", got.Reason, len(got.Top))
	}
	got, err = ExploreTopKAnytime(db, 0.05, ErrorRate, 10, ByAbsDivergence,
		AnytimeOptions{Budget: fpm.AnytimeBudget{Deadline: time.Now().Add(time.Hour)}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != fpm.ReasonExhausted || got.Partial() {
		t.Fatalf("generous deadline: reason %s", got.Reason)
	}
}

// TestAnytimeTopKOnUpdate: the streaming hook fires on its cadence with
// monotone visited counts and snapshots already in rank order.
func TestAnytimeTopKOnUpdate(t *testing.T) {
	db := datagenDB(t, 13, 300, 5, 4)
	var counts []int64
	var snaps [][]RankedEstimate
	got, err := ExploreTopKAnytime(db, 0.02, ErrorRate, 5, ByAbsDivergence, AnytimeOptions{
		UpdateEvery: 16,
		OnUpdate: func(top []RankedEstimate, visited int64) {
			counts = append(counts, visited)
			snaps = append(snaps, top)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatalf("no updates streamed over %d visited patterns", got.Visited)
	}
	for i, c := range counts {
		if c%16 != 0 || (i > 0 && c <= counts[i-1]) {
			t.Fatalf("update %d at visited=%d: cadence or monotonicity broken (%v)", i, c, counts)
		}
	}
	for _, snap := range snaps {
		if len(snap) > 5 {
			t.Fatalf("snapshot holds %d patterns, k=5", len(snap))
		}
		for i := 1; i < len(snap); i++ {
			if rankedBetter(&snap[i].Ranked, &snap[i-1].Ranked, ByAbsDivergence) {
				t.Fatal("snapshot not in descending rank order")
			}
		}
	}
	// The final answer must dominate (or equal) the last snapshot.
	if last := snaps[len(snaps)-1]; len(last) > 0 && len(got.Top) > 0 {
		if rankedBetter(&last[0].Ranked, &got.Top[0].Ranked, ByAbsDivergence) {
			t.Fatal("final top-1 is worse than a mid-stream snapshot's")
		}
	}
}

// TestAnytimeTopKSampled: structural checks on a sampled run — the
// flags, the shared Hoeffding half-width, and interval consistency
// (estimate inside its own interval; divergence interval = rate
// interval shifted by the exact global rate).
func TestAnytimeTopKSampled(t *testing.T) {
	db := datagenDB(t, 29, 500, 4, 3)
	got, err := ExploreTopKAnytime(db, 0.05, ErrorRate, 15, ByAbsDivergence,
		AnytimeOptions{SampleRows: 200, SampleSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sampled || got.SampleSize != 200 || got.Confidence != DefaultConfidence {
		t.Fatalf("sampled run metadata: %+v", got)
	}
	if got.SupportEps <= 0 || got.SupportEps > 0.5 {
		t.Fatalf("SupportEps = %v", got.SupportEps)
	}
	globalRate := rateOf(db.TotalTally(), ErrorRate)
	for _, e := range got.Top {
		if e.SupportLo > e.Support || e.Support > e.SupportHi {
			t.Errorf("support %v outside [%v, %v]", e.Support, e.SupportLo, e.SupportHi)
		}
		if e.RateLo > e.Rate || e.Rate > e.RateHi {
			t.Errorf("rate %v outside [%v, %v]", e.Rate, e.RateLo, e.RateHi)
		}
		if !almost(e.DivergenceLo, e.RateLo-globalRate, 1e-12) ||
			!almost(e.DivergenceHi, e.RateHi-globalRate, 1e-12) {
			t.Errorf("divergence interval [%v, %v] is not the rate interval shifted by %v",
				e.DivergenceLo, e.DivergenceHi, globalRate)
		}
	}
	// Identical seed, identical answer.
	again, err := ExploreTopKAnytime(db, 0.05, ErrorRate, 15, ByAbsDivergence,
		AnytimeOptions{SampleRows: 200, SampleSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Top, again.Top) {
		t.Fatal("same sample seed produced a different answer")
	}
}

// TestAnytimeSamplingCoverage is the statistical property pin for the
// sampling tier: across ≥50 seeded datasets, the reported 95% intervals
// must cover the true (full-dataset) support and rate at no less than
// 93% empirical frequency. Hoeffding supports are simultaneous and
// conservative, so they are held to a stricter bar. Failing seeds are
// printed for reproduction.
func TestAnytimeSamplingCoverage(t *testing.T) {
	const (
		seeds      = 50
		fullRows   = 400
		sampleRows = 150
	)
	type tally struct{ covered, total int }
	var supCov, rateCov tally
	perSeed := make(map[int64]float64, seeds)
	for seed := int64(1); seed <= seeds; seed++ {
		db := datagenDB(t, seed, fullRows, 4, 3)
		got, err := ExploreTopKAnytime(db, 0.05, ErrorRate, 40, ByAbsDivergence,
			AnytimeOptions{SampleRows: sampleRows, SampleSeed: seed * 101, Confidence: 0.95})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seedCovered, seedTotal := 0, 0
		for _, e := range got.Top {
			trueTally := db.TallyOf(e.Items)
			trueSup := float64(trueTally.Total()) / float64(fullRows)
			supCov.total++
			if e.SupportLo <= trueSup && trueSup <= e.SupportHi {
				supCov.covered++
			}
			kp, kn := ErrorRate.Counts(trueTally)
			if kp+kn > 0 {
				trueRate := float64(kp) / float64(kp+kn)
				rateCov.total++
				seedTotal++
				if e.RateLo <= trueRate && trueRate <= e.RateHi {
					rateCov.covered++
					seedCovered++
				}
			}
		}
		if seedTotal > 0 {
			perSeed[seed] = float64(seedCovered) / float64(seedTotal)
		}
	}
	if supCov.total < 500 || rateCov.total < 500 {
		t.Fatalf("too few patterns to measure coverage: %d support, %d rate", supCov.total, rateCov.total)
	}
	// Hoeffding intervals hold simultaneously for all patterns of a
	// sample; empirically they should essentially never miss.
	if cov := float64(supCov.covered) / float64(supCov.total); cov < 0.93 {
		t.Errorf("Hoeffding 95%% support intervals covered %.1f%% of true supports (want ≥93%%); per-seed rate coverage: %v",
			100*cov, perSeed)
	}
	if cov := float64(rateCov.covered) / float64(rateCov.total); cov < 0.93 {
		t.Errorf("Wilson 95%% rate intervals covered %.1f%% of true rates (want ≥93%%); per-seed coverage: %v",
			100*cov, perSeed)
	}
}

func TestAnytimeTopKValidation(t *testing.T) {
	db := fixtureDB(t)
	if _, err := ExploreTopKAnytime(db, -1, FPR, 5, ByDivergence, AnytimeOptions{}); err == nil {
		t.Error("negative support accepted")
	}
	if _, err := ExploreTopKAnytime(db, 0.1, FPR, 0, ByDivergence, AnytimeOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ExploreTopKAnytime(db, 0.1, Metric{}, 5, ByDivergence, AnytimeOptions{}); err == nil {
		t.Error("invalid metric accepted")
	}
	if _, err := ExploreTopKAnytime(db, 0.1, FPR, 5, ByDivergence, AnytimeOptions{Confidence: 1.5}); err == nil {
		t.Error("confidence 1.5 accepted")
	}
}

func BenchmarkAnytimeTopK(b *testing.B) {
	db := datagenDB(b, 7, 2000, 8, 4)
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExploreTopKAnytime(db, 0.01, ErrorRate, 20, ByAbsDivergence, AnytimeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("budget1k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExploreTopKAnytime(db, 0.01, ErrorRate, 20, ByAbsDivergence,
				AnytimeOptions{Budget: fpm.AnytimeBudget{MaxPatterns: 1000}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled500", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExploreTopKAnytime(db, 0.01, ErrorRate, 20, ByAbsDivergence,
				AnytimeOptions{SampleRows: 500, SampleSeed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
