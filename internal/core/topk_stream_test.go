package core

import (
	"math"
	"testing"
)

func TestExploreTopKMatchesFullExploration(t *testing.T) {
	db := randomClassifierDB(t, 71, 4, 3, 300)
	full := explore(t, db, 0.02)
	for _, order := range []RankOrder{ByDivergence, ByAbsDivergence, ByNegDivergence} {
		for _, k := range []int{1, 5, 25} {
			want := full.TopK(ErrorRate, k, order)
			got, err := ExploreTopK(db, 0.02, ErrorRate, k, order)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("order=%v k=%d: %d patterns, want %d", order, k, len(got), len(want))
			}
			// The heap's tie-breaking may differ from the full ranking's,
			// so compare the multiset of ranking keys rather than the
			// exact itemsets.
			for i := range got {
				kg := rankKey(got[i].Divergence, order)
				kw := rankKey(want[i].Divergence, order)
				if !almost(kg, kw, 1e-12) {
					t.Fatalf("order=%v k=%d rank %d: key %v, want %v",
						order, k, i, kg, kw)
				}
				// Cross-check the streamed annotations against the full
				// result.
				rk, err := full.Describe(got[i].Items, ErrorRate)
				if err != nil {
					t.Fatal(err)
				}
				if !almost(rk.Divergence, got[i].Divergence, 1e-12) ||
					!almost(rk.Support, got[i].Support, 1e-12) ||
					!almost(rk.T, got[i].T, 1e-9) {
					t.Fatalf("annotation mismatch on %v", got[i].Items)
				}
			}
		}
	}
}

func rankKey(div float64, order RankOrder) float64 {
	switch order {
	case ByAbsDivergence:
		return math.Abs(div)
	case ByNegDivergence:
		return -div
	default:
		return div
	}
}

func TestExploreTopKValidation(t *testing.T) {
	db := fixtureDB(t)
	if _, err := ExploreTopK(db, -1, FPR, 5, ByDivergence); err == nil {
		t.Error("bad support accepted")
	}
	if _, err := ExploreTopK(db, 0.05, FPR, 0, ByDivergence); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ExploreTopK(db, 0.05, Metric{Name: "bad"}, 5, ByDivergence); err == nil {
		t.Error("invalid metric accepted")
	}
}

func TestExploreTopKOrderedOutput(t *testing.T) {
	db := randomClassifierDB(t, 72, 3, 2, 200)
	got, err := ExploreTopK(db, 0.05, ErrorRate, 10, ByDivergence)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Divergence > got[i-1].Divergence+1e-12 {
			t.Fatalf("output not sorted at %d", i)
		}
	}
}
