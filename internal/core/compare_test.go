package core

import (
	"math"
	"testing"
)

// driftPair builds two explorations over the same schema where group g=1
// deteriorates in the second dataset while everything else is stable.
func driftPair(t testing.TB) (*Result, *Result) {
	t.Helper()
	build := func(g1FP int) *Result {
		var rows []rowSpec
		add := func(g string, nFP, nTN int) {
			for i := 0; i < nFP; i++ {
				rows = append(rows, rowSpec{[]string{g, "x"}, false, true})
			}
			for i := 0; i < nTN; i++ {
				rows = append(rows, rowSpec{[]string{g, "x"}, false, false})
			}
			// A few rows with the other value of h so both schemas have
			// identical item spaces.
			rows = append(rows, rowSpec{[]string{g, "y"}, false, false})
		}
		add("1", g1FP, 20-g1FP)
		add("0", 4, 16)
		db := buildClassifierDB(t, []string{"g", "h"}, rows)
		return explore(t, db, 0.01)
	}
	return build(4), build(16) // g=1 FPR: 0.2 -> 0.8
}

func TestCompareDetectsDrift(t *testing.T) {
	a, b := driftPair(t)
	shifts, err := Compare(a, b, FPR)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) == 0 {
		t.Fatal("no comparable patterns")
	}
	// The top net shift involves g=1.
	top := shifts[0]
	label := a.DB.Catalog.Format(top.Items)
	if want := "g=1"; !contains(label, want) {
		t.Errorf("top drifting pattern %q does not involve %s", label, want)
	}
	if top.Shift <= 0.3 {
		t.Errorf("top shift = %v, want > 0.3", top.Shift)
	}
	if top.T < 2 {
		t.Errorf("top shift t = %v, want significant", top.T)
	}
	// Sorted by |NetShift| descending.
	for i := 1; i < len(shifts); i++ {
		if math.Abs(shifts[i].NetShift) > math.Abs(shifts[i-1].NetShift)+1e-12 {
			t.Errorf("shifts not sorted at %d", i)
		}
	}
	// Stable patterns have small net shift: g=0 moved little beyond the
	// global movement.
	for _, s := range shifts {
		if a.DB.Catalog.Format(s.Items) == "g=0" && math.Abs(s.Shift) > 0.1 {
			t.Errorf("stable subgroup g=0 shifted by %v", s.Shift)
		}
	}
}

func TestCompareIdenticalResultsNoShift(t *testing.T) {
	a, _ := driftPair(t)
	shifts, err := Compare(a, a, FPR)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shifts {
		if s.Shift != 0 || s.NetShift != 0 || s.T != 0 {
			t.Fatalf("self-comparison produced shift %+v", s)
		}
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	a, _ := driftPair(t)
	other := correctiveFixture(t) // schema (g, p) with different domains
	if _, err := Compare(a, other, FPR); err == nil {
		t.Error("different schemas accepted")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
