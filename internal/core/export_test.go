package core

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := correctiveFixture(t)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf, FPR, ByDivergence); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + one row per defined pattern.
	ranked := r.RankAll(FPR, ByDivergence)
	if len(records) != len(ranked)+1 {
		t.Fatalf("CSV rows = %d, want %d", len(records), len(ranked)+1)
	}
	if records[0][0] != "itemset" || records[0][6] != "p_value" {
		t.Errorf("header = %v", records[0])
	}
	for i, rec := range records[1:] {
		if len(rec) != 9 {
			t.Fatalf("row %d has %d fields", i, len(rec))
		}
		// Numeric fields parse.
		for _, col := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
			if _, err := strconv.ParseFloat(rec[col], 64); err != nil {
				t.Fatalf("row %d col %d = %q not numeric", i, col, rec[col])
			}
		}
		// Divergence column matches the ranked value.
		div, _ := strconv.ParseFloat(rec[4], 64)
		if !almost(div, ranked[i].Divergence, 1e-6) {
			t.Errorf("row %d divergence %v vs %v", i, div, ranked[i].Divergence)
		}
		// Itemset rendering is the canonical one.
		if !strings.Contains(rec[0], "=") {
			t.Errorf("row %d itemset %q malformed", i, rec[0])
		}
	}
}
