package core

import (
	"math"
	"sort"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// This file extends the paper's Bayesian significance treatment
// (Sec. 3.3) with exact interval and multiple-testing machinery: credible
// intervals on the posterior rate, two-sided p-values for the Welch
// statistic, and Benjamini–Hochberg control of the false discovery rate
// across the thousands of itemsets an exhaustive exploration tests
// simultaneously.

// CredibleInterval returns the equal-tailed Bayesian credible interval of
// the metric's rate on a tally, at the given level (e.g. 0.95).
func (r *Result) CredibleInterval(t fpm.Tally, m Metric, level float64) (lo, hi float64) {
	return r.PosteriorRate(t, m).CredibleInterval(level)
}

// PValue returns the two-sided p-value of the Welch statistic comparing
// the tally's rate with the whole-dataset rate. The dataset posterior has
// thousands of observations, so the normal limit of the t distribution is
// used.
func (r *Result) PValue(t fpm.Tally, m Metric) float64 {
	return stats.TwoSidedTPValue(r.TStat(t, m), 0)
}

// Significant is a pattern that survives FDR control, annotated with its
// raw and adjusted p-values.
type Significant struct {
	Ranked
	P    float64 // raw two-sided p-value
	AdjP float64 // Benjamini–Hochberg adjusted p-value
}

// SignificantPatterns returns the patterns whose divergence is
// statistically significant after Benjamini–Hochberg FDR control at
// level q, sorted by the given order. Patterns where the metric is
// undefined are excluded (they carry no evidence).
func (r *Result) SignificantPatterns(m Metric, q float64, order RankOrder) []Significant {
	all := r.RankAll(m, order)
	pvals := make([]float64, len(all))
	for i, rk := range all {
		pvals[i] = stats.TwoSidedTPValue(rk.T, 0)
	}
	reject, adjusted := stats.BenjaminiHochberg(pvals, q)
	out := make([]Significant, 0, len(all))
	for i, rk := range all {
		if reject[i] {
			out = append(out, Significant{Ranked: rk, P: pvals[i], AdjP: adjusted[i]})
		}
	}
	return out
}

// DivergenceCredible annotates a Ranked pattern with the credible
// interval of its rate and the posterior probability that its rate
// exceeds the dataset rate (for positive divergences) or falls below it
// (for negative ones) — a fully Bayesian alternative to the t ranking.
type DivergenceCredible struct {
	Ranked
	RateLo, RateHi float64 // credible interval of the subgroup rate
	PosteriorSign  float64 // P(rate on the divergent side of the dataset rate)
}

// DescribeCredible computes the Bayesian annotation for one frequent
// itemset at the given credible level.
func (r *Result) DescribeCredible(is fpm.Itemset, m Metric, level float64) (DivergenceCredible, error) {
	rk, err := r.Describe(is, m)
	if err != nil {
		return DivergenceCredible{}, err
	}
	post := r.PosteriorRate(rk.Tally, m)
	lo, hi := post.CredibleInterval(level)
	global := r.GlobalRate(m)
	var sign float64
	if rk.Divergence >= 0 {
		sign = post.TailProb(global)
	} else {
		sign = 1 - post.TailProb(global)
	}
	return DivergenceCredible{Ranked: rk, RateLo: lo, RateHi: hi, PosteriorSign: sign}, nil
}

// TopKCredible ranks patterns by the posterior probability that their
// rate lies on the divergent side of the dataset rate, breaking ties by
// |divergence|. This implements the "rank by statistical significance"
// option the paper mentions alongside divergence ranking.
func (r *Result) TopKCredible(m Metric, k int, level float64) []DivergenceCredible {
	global := r.GlobalRate(m)
	if math.IsNaN(global) {
		return nil
	}
	out := make([]DivergenceCredible, 0, len(r.Patterns))
	for _, p := range r.Patterns {
		rk, ok := r.ranked(p, m)
		if !ok {
			continue
		}
		post := r.PosteriorRate(p.Tally, m)
		lo, hi := post.CredibleInterval(level)
		var sign float64
		if rk.Divergence >= 0 {
			sign = post.TailProb(global)
		} else {
			sign = 1 - post.TailProb(global)
		}
		out = append(out, DivergenceCredible{Ranked: rk, RateLo: lo, RateHi: hi, PosteriorSign: sign})
	}
	sort.Slice(out, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if out[i].PosteriorSign != out[j].PosteriorSign {
			return out[i].PosteriorSign > out[j].PosteriorSign
		}
		di, dj := math.Abs(out[i].Divergence), math.Abs(out[j].Divergence)
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if di != dj {
			return di > dj
		}
		return lessItemsets(out[i].Items, out[j].Items)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
