package core

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := randomClassifierDB(t, 81, 3, 3, 200)
	r := explore(t, db, 0.02)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadResult(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPatterns() != r.NumPatterns() ||
		loaded.MinSup != r.MinSup || loaded.Miner != r.Miner {
		t.Fatalf("metadata mismatch: %+v", loaded)
	}
	// Every analysis gives identical answers on the loaded result.
	for _, p := range r.Patterns {
		q, ok := loaded.Lookup(p.Items)
		if !ok || q.Tally != p.Tally {
			t.Fatalf("pattern %v lost in round trip", p.Items)
		}
	}
	origTop := r.TopK(ErrorRate, 5, ByDivergence)
	loadTop := loaded.TopK(ErrorRate, 5, ByDivergence)
	for i := range origTop {
		if !origTop[i].Items.Equal(loadTop[i].Items) ||
			origTop[i].Divergence != loadTop[i].Divergence {
			t.Fatalf("ranking differs after load at %d", i)
		}
	}
	g1 := r.GlobalDivergence(ErrorRate)
	g2 := loaded.GlobalDivergence(ErrorRate)
	for it, v := range g1 {
		if g2[it] != v {
			t.Fatalf("global divergence differs for item %v", it)
		}
	}
}

func TestLoadRejectsWrongDatabase(t *testing.T) {
	dbA := randomClassifierDB(t, 82, 3, 2, 100)
	dbB := randomClassifierDB(t, 83, 3, 2, 100) // same shape, different rows
	r := explore(t, dbA, 0.05)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResult(&buf, dbB); err == nil {
		t.Error("snapshot attached to a different database")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := randomClassifierDB(t, 84, 2, 2, 50)
	if _, err := LoadResult(bytes.NewReader([]byte("not a gob")), db); err == nil {
		t.Error("garbage decoded")
	}
}
