package core

import (
	"math"
	"testing"
)

// correctiveFixture plants a clear corrective structure: g=1 is strongly
// FP-divergent, but adding p=zero brings it back to the baseline.
func correctiveFixture(t testing.TB) *Result {
	t.Helper()
	var rows []rowSpec
	add := func(g, p string, nFP, nTN int) {
		for i := 0; i < nFP; i++ {
			rows = append(rows, rowSpec{[]string{g, p}, false, true})
		}
		for i := 0; i < nTN; i++ {
			rows = append(rows, rowSpec{[]string{g, p}, false, false})
		}
	}
	// Overall FPR is 35/80 = 0.4375. The (g=1, p=zero) cell sits at 0.45,
	// almost exactly the baseline, so p=zero corrects the strong
	// divergence of g=1 (0.625 − 0.4375 = 0.1875) down to 0.0125.
	add("1", "many", 16, 4) // FPR 0.8
	add("1", "zero", 9, 11) // FPR 0.45 — corrective back to baseline
	add("0", "many", 5, 15) // FPR 0.25
	add("0", "zero", 5, 15) // FPR 0.25
	db := buildClassifierDB(t, []string{"g", "p"}, rows)
	return explore(t, db, 0.01)
}

func TestCorrectiveItemsFindsPlantedCorrection(t *testing.T) {
	r := correctiveFixture(t)
	db := r.DB
	all := r.CorrectiveItems(FPR)
	if len(all) == 0 {
		t.Fatal("no corrective items found")
	}
	// The strongest correction must be p=zero applied to (g=1).
	top := all[0]
	if db.Catalog.Name(top.Item) != "p=zero" {
		t.Errorf("top corrective item = %s, want p=zero", db.Catalog.Name(top.Item))
	}
	g1 := mustItemset(t, db, "g=1")
	if !top.Base.Equal(g1) {
		t.Errorf("top corrective base = %s, want g=1", db.Catalog.Format(top.Base))
	}
	// The definition's inequality must hold for every reported pair.
	for _, c := range all {
		if math.Abs(c.ExtDiv) >= math.Abs(c.BaseDiv) {
			t.Errorf("reported non-corrective pair: |%v| >= |%v|", c.ExtDiv, c.BaseDiv)
		}
		if !almost(c.Factor, math.Abs(c.BaseDiv)-math.Abs(c.ExtDiv), 1e-12) {
			t.Errorf("factor %v inconsistent with divergences", c.Factor)
		}
		if c.T < 0 {
			t.Errorf("negative t statistic %v", c.T)
		}
	}
	// Sorted by decreasing factor.
	for i := 1; i < len(all); i++ {
		if all[i].Factor > all[i-1].Factor+1e-15 {
			t.Errorf("corrective list not sorted at %d", i)
		}
	}
}

func TestTopCorrectiveFiltersAndLimits(t *testing.T) {
	r := correctiveFixture(t)
	all := r.CorrectiveItems(FPR)
	top1 := r.TopCorrective(FPR, 1, 0)
	if len(top1) != 1 || !top1[0].Base.Equal(all[0].Base) || top1[0].Item != all[0].Item {
		t.Errorf("TopCorrective(1, 0) = %v", top1)
	}
	// An absurd t threshold filters everything.
	none := r.TopCorrective(FPR, 10, 1e9)
	if len(none) != 0 {
		t.Errorf("TopCorrective with huge minT returned %d entries", len(none))
	}
}

// Every corrective pair is recomputable from first principles on a random
// database, and no qualifying pair is missed (exhaustiveness — the
// capability Slice Finder's pruned search lacks, Sec. 4.2).
func TestCorrectiveItemsExhaustive(t *testing.T) {
	db := randomClassifierDB(t, 77, 3, 2, 150)
	r := explore(t, db, 0.05)
	got := map[string]bool{}
	for _, c := range r.CorrectiveItems(ErrorRate) {
		got[c.Base.Key()+"|"+string(rune(c.Item))] = true
	}
	count := 0
	for _, p := range r.Patterns {
		if len(p.Items) < 2 || math.IsNaN(r.Rate(p.Tally, ErrorRate)) {
			continue
		}
		extDiv := r.DivergenceOfTally(p.Tally, ErrorRate)
		for _, alpha := range p.Items {
			base := p.Items.Without(alpha)
			bp, ok := r.Lookup(base)
			if !ok || math.IsNaN(r.Rate(bp.Tally, ErrorRate)) {
				continue
			}
			baseDiv := r.DivergenceOfTally(bp.Tally, ErrorRate)
			if math.Abs(extDiv) < math.Abs(baseDiv) {
				count++
				if !got[base.Key()+"|"+string(rune(alpha))] {
					t.Fatalf("missed corrective pair base=%v item=%v", base, alpha)
				}
			}
		}
	}
	if count == 0 {
		t.Skip("random fixture produced no corrective pairs; adjust seed")
	}
	if len(got) != count {
		t.Errorf("reported %d pairs, first-principles scan found %d", len(got), count)
	}
}
