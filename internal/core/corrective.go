package core

import (
	"math"
	"sort"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// Corrective records that adding Item to Base reduces the absolute
// divergence (Def. 4.2): |Δ(Base ∪ Item)| < |Δ(Base)|.
type Corrective struct {
	Base     fpm.Itemset // the itemset I being corrected
	Item     fpm.Item    // the corrective item α
	BaseDiv  float64     // Δ(I)
	ExtDiv   float64     // Δ(I ∪ α)
	Factor   float64     // corrective factor |Δ(I)| − |Δ(I∪α)|
	T        float64     // Welch t between the rates of I and I∪α
	Support  float64     // support of I ∪ α
	BaseSupp float64     // support of I
}

// CorrectiveItems scans every frequent itemset extension and returns all
// corrective (base, item) pairs, sorted by decreasing corrective factor.
// This is exactly the analysis behind Table 3; it is possible only
// because the exploration is exhaustive (Sec. 4.2).
//
// Pairs where the metric is undefined on either itemset are skipped, as
// are trivial bases (the empty itemset, whose divergence is 0 and can
// never shrink in absolute value).
func (r *Result) CorrectiveItems(m Metric) []Corrective {
	var out []Corrective
	for _, p := range r.Patterns {
		if len(p.Items) < 2 {
			continue
		}
		extRate := r.Rate(p.Tally, m)
		if math.IsNaN(extRate) {
			continue
		}
		extDiv := r.DivergenceOfTally(p.Tally, m)
		for _, alpha := range p.Items {
			base := p.Items.Without(alpha)
			bp, ok := r.Lookup(base)
			if !ok {
				continue
			}
			baseRate := r.Rate(bp.Tally, m)
			if math.IsNaN(baseRate) {
				continue
			}
			baseDiv := r.DivergenceOfTally(bp.Tally, m)
			if math.Abs(extDiv) >= math.Abs(baseDiv) {
				continue
			}
			out = append(out, Corrective{
				Base:     base,
				Item:     alpha,
				BaseDiv:  baseDiv,
				ExtDiv:   extDiv,
				Factor:   math.Abs(baseDiv) - math.Abs(extDiv),
				T:        stats.WelchTPosterior(r.PosteriorRate(bp.Tally, m), r.PosteriorRate(p.Tally, m)),
				Support:  r.Support(p.Tally),
				BaseSupp: r.Support(bp.Tally),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if out[i].Factor != out[j].Factor {
			return out[i].Factor > out[j].Factor
		}
		if !out[i].Base.Equal(out[j].Base) {
			return lessItemsets(out[i].Base, out[j].Base)
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// TopCorrective returns the k strongest corrective pairs, optionally
// requiring a minimum Welch t between the base and extended rates so the
// reported corrections are statistically meaningful (the paper's Table 3
// reports t alongside each correction).
func (r *Result) TopCorrective(m Metric, k int, minT float64) []Corrective {
	all := r.CorrectiveItems(m)
	out := make([]Corrective, 0, k)
	for _, c := range all {
		if c.T < minT {
			continue
		}
		out = append(out, c)
		if len(out) == k {
			break
		}
	}
	return out
}
