package core

import (
	"math"

	"repro/internal/fpm"
)

// Prune applies the post-exploration redundancy pruning of Sec. 3.5: a
// pattern I is removed when some item α ∈ I changes the divergence by at
// most eps, i.e. |Δ(I) − Δ(I \ α)| <= eps — the shorter pattern I \ α
// already captures (up to eps) the divergence of I. Singletons are
// compared against the empty itemset (Δ = 0), so items with |Δ| <= eps
// are pruned too.
//
// Patterns on which the metric is undefined are pruned: they carry no
// rate information under m. The surviving patterns are returned in the
// result's canonical order.
func (r *Result) Prune(m Metric, eps float64) []Pattern {
	var out []Pattern
	for _, p := range r.Patterns {
		if !r.pruned(p, m, eps) {
			out = append(out, p)
		}
	}
	return out
}

// PrunedCount returns how many patterns survive pruning at eps — the
// quantity swept in Figure 10.
func (r *Result) PrunedCount(m Metric, eps float64) int {
	n := 0
	for _, p := range r.Patterns {
		if !r.pruned(p, m, eps) {
			n++
		}
	}
	return n
}

func (r *Result) pruned(p Pattern, m Metric, eps float64) bool {
	if math.IsNaN(r.Rate(p.Tally, m)) {
		return true
	}
	div := r.DivergenceOfTally(p.Tally, m)
	for _, alpha := range p.Items {
		var parentDiv float64
		parent := p.Items.Without(alpha)
		if len(parent) > 0 {
			pp, ok := r.Lookup(parent)
			if !ok {
				continue
			}
			parentDiv = r.DivergenceOfTally(pp.Tally, m)
		}
		if math.Abs(div-parentDiv) <= eps {
			return true
		}
	}
	return false
}

// TopKPruned ranks the patterns surviving redundancy pruning, as in
// Table 6: the most divergent non-redundant itemsets.
func (r *Result) TopKPruned(m Metric, eps float64, k int, order RankOrder) []Ranked {
	survivors := r.Prune(m, eps)
	sub := &Result{
		DB:       r.DB,
		MinSup:   r.MinSup,
		MinCount: r.MinCount,
		Miner:    r.Miner,
		Patterns: survivors,
		index:    make(map[string]int, len(survivors)),
		total:    r.total,
	}
	for i, p := range survivors {
		sub.index[p.Items.Key()] = i
	}
	return sub.TopK(m, k, order)
}

// MarginalContribution returns Δ(I) − Δ(I\α) for α ∈ I, the quantity the
// pruning rule thresholds. The second return is false when I or I\α is
// not frequent or the metric is undefined on either.
func (r *Result) MarginalContribution(is fpm.Itemset, alpha fpm.Item, m Metric) (float64, bool) {
	if !is.Contains(alpha) {
		return 0, false
	}
	p, ok := r.Lookup(is)
	if !ok || math.IsNaN(r.Rate(p.Tally, m)) {
		return 0, false
	}
	parent := is.Without(alpha)
	var parentDiv float64
	if len(parent) > 0 {
		pp, ok := r.Lookup(parent)
		if !ok || math.IsNaN(r.Rate(pp.Tally, m)) {
			return 0, false
		}
		parentDiv = r.DivergenceOfTally(pp.Tally, m)
	}
	return r.DivergenceOfTally(p.Tally, m) - parentDiv, true
}
