package core

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/fpm"
	"repro/internal/permtest"
)

// plantedResult explores a reduced instance of the paper's artificial
// dataset (Sec. 4.4): false positives are planted in (a=0,b=0,c=0) and
// (a=1,b=1,c=1), everything else is null.
func plantedResult(t testing.TB) *Result {
	t.Helper()
	g := datagen.ArtificialSized(3, 2500)
	classes, err := ConfusionClasses(g.Truth, g.Pred)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fpm.NewTxDB(g.Data, classes, NumConfusionClasses)
	if err != nil {
		t.Fatal(err)
	}
	return explore(t, db, 0.05)
}

// TestPermutationTestAlignsWithRankAll pins the hypothesis-set contract:
// PermutationTest tests exactly the patterns RankAll scores (the mined
// patterns on which the metric is defined), in mining order.
func TestPermutationTestAlignsWithRankAll(t *testing.T) {
	db := randomClassifierDB(t, 31, 3, 2, 300)
	r := explore(t, db, 0.03)
	po, err := r.PermutationTest(context.Background(), FPR, permtest.Config{Permutations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked := r.RankAll(FPR, ByDivergence)
	if len(po.Tested) != len(ranked) {
		t.Fatalf("tested %d hypotheses, RankAll scores %d", len(po.Tested), len(ranked))
	}
	if po.Permutations != 100 || po.Exhaustive {
		t.Fatalf("outcome shape: %+v", po)
	}
	for _, s := range po.Tested {
		if s.P <= 0 || s.P > 1 || s.AdjP < s.P-1e-15 || s.AdjP > 1 {
			t.Fatalf("pattern %v: p=%v adj=%v malformed", s.Items, s.P, s.AdjP)
		}
	}
}

// TestWYPlantedEffectsSurvive is the power half of the validity story:
// on the artificial dataset the two planted divergent itemsets must
// survive Westfall–Young FWER control on the FPR metric with room to
// spare, and rank among the survivors.
func TestWYPlantedEffectsSurvive(t *testing.T) {
	r := plantedResult(t)
	sig, err := r.SignificantPatternsWY(context.Background(), FPR, 0.05, ByAbsDivergence,
		permtest.Config{Permutations: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) == 0 {
		t.Fatal("no patterns survived WY on planted-effect data")
	}
	for _, names := range [][]string{{"a=0", "b=0", "c=0"}, {"a=1", "b=1", "c=1"}} {
		is := mustItemset(t, r.DB, names...)
		found := false
		for _, s := range sig {
			if s.Items.Equal(is) {
				found = true
				if s.AdjP > 0.05 {
					t.Errorf("planted %v has adjusted p %v", names, s.AdjP)
				}
			}
		}
		if !found {
			t.Errorf("planted itemset %v not among %d WY survivors", names, len(sig))
		}
	}
	// Survivors come back in ranking order.
	for i := 1; i < len(sig); i++ {
		if lessRankedBy(sig[i].Ranked, sig[i-1].Ranked, ByAbsDivergence) {
			t.Fatalf("survivors not in ByAbsDivergence order at %d", i)
		}
	}
}

// TestPermFDRAgreesWithAnalyticBH compares the two FDR routes on
// planted-effect data: the analytic t-approximation and the permutation
// p-values should agree on the clear calls — every planted itemset is
// rejected by both, and the permutation reject set is no wilder than a
// small superset/subset discrepancy on borderline patterns.
func TestPermFDRAgreesWithAnalyticBH(t *testing.T) {
	r := plantedResult(t)
	perm, err := r.SignificantPatternsPermFDR(context.Background(), FPR, 0.05, ByAbsDivergence,
		permtest.Config{Permutations: 400, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	analytic := r.SignificantPatterns(FPR, 0.05, ByAbsDivergence)
	if len(perm) == 0 || len(analytic) == 0 {
		t.Fatalf("degenerate reject sets: perm=%d analytic=%d", len(perm), len(analytic))
	}
	key := func(s Significant) string { return r.DB.Catalog.Format(s.Items) }
	inPerm := make(map[string]bool, len(perm))
	for _, s := range perm {
		if s.AdjP < s.P-1e-15 {
			t.Fatalf("perm-FDR adjusted p %v below raw %v", s.AdjP, s.P)
		}
		inPerm[key(s)] = true
	}
	inAnalytic := make(map[string]bool, len(analytic))
	for _, s := range analytic {
		inAnalytic[key(s)] = true
	}
	for _, names := range [][]string{{"a=0", "b=0", "c=0"}, {"a=1", "b=1", "c=1"}} {
		k := r.DB.Catalog.Format(mustItemset(t, r.DB, names...))
		if !inPerm[k] {
			t.Errorf("planted %s missing from permutation-FDR rejects", k)
		}
		if !inAnalytic[k] {
			t.Errorf("planted %s missing from analytic-BH rejects", k)
		}
	}
	// Agreement on the bulk: the symmetric difference stays a small
	// fraction of the union (borderline patterns may flip either way
	// between the analytic approximation and the resampled nulls).
	union, diff := 0, 0
	for k := range inPerm {
		union++
		if !inAnalytic[k] {
			diff++
		}
	}
	for k := range inAnalytic {
		if !inPerm[k] {
			union++
			diff++
		}
	}
	if float64(diff) > 0.25*float64(union) {
		t.Errorf("reject sets disagree on %d of %d patterns", diff, union)
	}
}

func TestPermutationTestCancellation(t *testing.T) {
	db := randomClassifierDB(t, 32, 3, 2, 200)
	r := explore(t, db, 0.03)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.PermutationTest(ctx, FPR, permtest.Config{Permutations: 5000}); err == nil {
		t.Fatal("canceled permutation test returned no error")
	}
}

func TestPermutationTestRejectsUndefinedMetric(t *testing.T) {
	db := randomClassifierDB(t, 33, 3, 2, 100)
	r := explore(t, db, 0.05)
	bad := Metric{Name: "bad", Pos: 1 << ClassFP, Neg: 1 << ClassFP}
	if _, err := r.PermutationTest(context.Background(), bad, permtest.Config{Permutations: 10}); err == nil {
		t.Fatal("overlapping metric masks accepted")
	}
}

// TestMaxEntBaselineProperties checks the independence baseline on the
// artificial dataset, where all attributes are drawn i.i.d.: observed
// supports sit close to the product model, leverage is the difference,
// and the planted outcome divergence does not masquerade as structural
// (support-level) surprise.
func TestMaxEntBaselineProperties(t *testing.T) {
	r := plantedResult(t)
	is := mustItemset(t, r.DB, "a=0", "b=0", "c=0")
	mb, err := r.MaxEntBaselineOf(is)
	if err != nil {
		t.Fatal(err)
	}
	if mb.ExpectedSupport <= 0 || mb.ExpectedSupport >= 1 {
		t.Fatalf("expected support %v out of (0,1)", mb.ExpectedSupport)
	}
	if diff := mb.Observed - mb.ExpectedSupport; diff != mb.Leverage {
		t.Fatalf("leverage %v, observed-expected %v", mb.Leverage, diff)
	}
	// Three i.i.d. fair coins: expected support ~1/8, observation within
	// sampling noise, so the binomial tail is unremarkable.
	if mb.ExpectedSupport < 0.08 || mb.ExpectedSupport > 0.17 {
		t.Errorf("independence expectation %v far from 1/8", mb.ExpectedSupport)
	}
	if mb.P < 1e-4 {
		t.Errorf("i.i.d. itemset scored structurally surprising: p=%v", mb.P)
	}
	if mb.Iterations < 1 {
		t.Errorf("IPF iterations %d", mb.Iterations)
	}

	// Error cases: empty itemset, non-frequent itemset.
	if _, err := r.MaxEntBaselineOf(fpm.Itemset{}); err == nil {
		t.Error("empty itemset accepted")
	}
	deep := mustItemset(t, r.DB, "a=0", "b=0", "c=0", "d=0", "e=0", "f=0", "g=0", "h=0", "i=0", "j=0")
	if _, err := r.MaxEntBaselineOf(deep); err == nil {
		t.Error("non-frequent itemset accepted")
	}
}
