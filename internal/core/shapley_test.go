package core

import (
	"testing"
	"testing/quick"

	"repro/internal/fpm"
)

// Shapley efficiency (the fundamental axiom): contributions of all items
// of I sum exactly to Δ(I). Checked on every frequent itemset of a
// random classifier database.
func TestLocalShapleyEfficiency(t *testing.T) {
	db := randomClassifierDB(t, 5, 3, 2, 120)
	r := explore(t, db, 0.02)
	checked := 0
	for _, p := range r.Patterns {
		if len(p.Items) < 2 {
			continue
		}
		cs, err := r.LocalShapley(p.Items, ErrorRate)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range cs {
			sum += c.Value
		}
		div := r.DivergenceOfTally(p.Tally, ErrorRate)
		if !almost(sum, div, 1e-9) {
			t.Fatalf("Σ contributions = %v, Δ = %v on %s",
				sum, div, db.Catalog.Format(p.Items))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no multi-item patterns checked")
	}
}

// Efficiency as a quick property across random databases and metrics.
func TestLocalShapleyEfficiencyProperty(t *testing.T) {
	metrics := []Metric{FPR, FNR, ErrorRate, Accuracy}
	f := func(seed uint32, mIdx uint8) bool {
		db := randomClassifierDB(t, int64(seed), 3, 2, 40)
		r := explore(t, db, 0.05)
		m := metrics[int(mIdx)%len(metrics)]
		for _, p := range r.Patterns {
			if len(p.Items) < 2 {
				continue
			}
			cs, err := r.LocalShapley(p.Items, m)
			if err != nil {
				return false
			}
			var sum float64
			for _, c := range cs {
				sum += c.Value
			}
			if !almost(sum, r.DivergenceOfTally(p.Tally, m), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// A single-item itemset's Shapley contribution is its own divergence.
func TestLocalShapleySingleton(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	g1 := mustItemset(t, db, "g=1")
	cs, err := r.LocalShapley(g1, FPR)
	if err != nil {
		t.Fatal(err)
	}
	div, _ := r.Divergence(g1, FPR)
	if len(cs) != 1 || !almost(cs[0].Value, div, 1e-12) {
		t.Errorf("singleton Shapley = %v, want %v", cs, div)
	}
}

// Symmetric items (duplicated attribute columns) receive equal
// contributions.
func TestLocalShapleySymmetry(t *testing.T) {
	var rows []rowSpec
	vals := []struct {
		v     string
		n     int
		truth bool
		pred  bool
	}{
		{"1", 6, false, true},
		{"1", 2, false, false},
		{"0", 1, false, true},
		{"0", 7, false, false},
	}
	for _, s := range vals {
		for i := 0; i < s.n; i++ {
			// Attributes x and y are exact copies.
			rows = append(rows, rowSpec{[]string{s.v, s.v}, s.truth, s.pred})
		}
	}
	db := buildClassifierDB(t, []string{"x", "y"}, rows)
	r := explore(t, db, 0.05)
	is := mustItemset(t, db, "x=1", "y=1")
	cs, err := r.LocalShapley(is, FPR)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(cs[0].Value, cs[1].Value, 1e-12) {
		t.Errorf("symmetric items got %v and %v", cs[0].Value, cs[1].Value)
	}
}

// A null item (adding it never changes the divergence) gets zero
// contribution. Construct by duplicating every row across z=0/z=1.
func TestLocalShapleyNullItem(t *testing.T) {
	base := []rowSpec{
		{[]string{"1"}, false, true},
		{[]string{"1"}, false, true},
		{[]string{"1"}, false, false},
		{[]string{"0"}, false, true},
		{[]string{"0"}, false, false},
		{[]string{"0"}, false, false},
	}
	var rows []rowSpec
	for _, r := range base {
		for _, z := range []string{"0", "1"} {
			rows = append(rows, rowSpec{[]string{r.values[0], z}, r.truth, r.pred})
		}
	}
	db := buildClassifierDB(t, []string{"g", "z"}, rows)
	r := explore(t, db, 0.01)
	is := mustItemset(t, db, "g=1", "z=0")
	cs, err := r.LocalShapley(is, FPR)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		name := db.Catalog.Name(c.Item)
		if name == "z=0" && !almost(c.Value, 0, 1e-12) {
			t.Errorf("null item z=0 contribution = %v, want 0", c.Value)
		}
		if name == "g=1" {
			div, _ := r.Divergence(is, FPR)
			if !almost(c.Value, div, 1e-12) {
				t.Errorf("g=1 contribution = %v, want full Δ %v", c.Value, div)
			}
		}
	}
}

func TestLocalShapleyErrors(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	if _, err := r.LocalShapley(nil, FPR); err == nil {
		t.Error("empty itemset accepted")
	}
	long := make(fpm.Itemset, 30)
	if _, err := r.LocalShapley(long, FPR); err == nil {
		t.Error("infrequent/oversized itemset accepted")
	}
}

func TestSortContributions(t *testing.T) {
	cs := []Contribution{{Item: 2, Value: 0.1}, {Item: 1, Value: 0.5}, {Item: 3, Value: 0.1}}
	SortContributions(cs)
	if cs[0].Item != 1 || cs[1].Item != 2 || cs[2].Item != 3 {
		t.Errorf("sorted = %v", cs)
	}
}

// Negative contributions appear for corrective items inside itemsets
// (Figure 3): an item whose presence pulls divergence toward zero.
func TestShapleyNegativeContribution(t *testing.T) {
	var rows []rowSpec
	add := func(g, p string, n int, pred bool) {
		for i := 0; i < n; i++ {
			rows = append(rows, rowSpec{[]string{g, p}, false, pred})
		}
	}
	// g=1 alone: strongly FP-prone.
	add("1", "hi", 8, true)
	add("1", "hi", 2, false)
	// g=1 with p=zero: corrected back to baseline.
	add("1", "zero", 1, true)
	add("1", "zero", 9, false)
	// g=0 rows: baseline FPR.
	add("0", "hi", 2, true)
	add("0", "hi", 8, false)
	add("0", "zero", 2, true)
	add("0", "zero", 8, false)
	db := buildClassifierDB(t, []string{"g", "p"}, rows)
	r := explore(t, db, 0.01)
	is := mustItemset(t, db, "g=1", "p=zero")
	cs, err := r.LocalShapley(is, FPR)
	if err != nil {
		t.Fatal(err)
	}
	var zeroContrib float64
	found := false
	for _, c := range cs {
		if db.Catalog.Name(c.Item) == "p=zero" {
			zeroContrib = c.Value
			found = true
		}
	}
	if !found || zeroContrib >= 0 {
		t.Errorf("corrective item contribution = %v, want negative", zeroContrib)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 3: 2, 255: 8, 256: 1}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%d) = %d, want %d", x, got, want)
		}
	}
}

// Guard against regressions in the math: Shapley on a 2-item set has the
// closed form ½(Δ(ab)−Δ(b)) + ½Δ(a).
func TestLocalShapleyClosedFormPair(t *testing.T) {
	db := randomClassifierDB(t, 99, 2, 2, 80)
	r := explore(t, db, 0.02)
	for _, p := range r.Patterns {
		if len(p.Items) != 2 {
			continue
		}
		cs, err := r.LocalShapley(p.Items, ErrorRate)
		if err != nil {
			t.Fatal(err)
		}
		dAB := r.DivergenceOfTally(p.Tally, ErrorRate)
		dA, _ := r.Divergence(fpm.Itemset{p.Items[0]}, ErrorRate)
		dB, _ := r.Divergence(fpm.Itemset{p.Items[1]}, ErrorRate)
		wantA := 0.5*(dAB-dB) + 0.5*dA
		var gotA float64
		for _, c := range cs {
			if c.Item == p.Items[0] {
				gotA = c.Value
			}
		}
		if !almost(gotA, wantA, 1e-9) {
			t.Fatalf("pair closed form: got %v, want %v", gotA, wantA)
		}
	}
}
