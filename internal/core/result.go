package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// Pattern is one frequent itemset together with its outcome tally.
type Pattern struct {
	Items fpm.Itemset
	Tally fpm.Tally
}

// Result holds the output of one exploration: every frequent itemset with
// its tally, indexed for O(1) subset lookups. All divergence, Shapley,
// corrective and pruning computations are served from here without
// touching the data again.
type Result struct {
	DB       *fpm.TxDB
	MinSup   float64
	MinCount int64
	Miner    string

	Patterns []Pattern
	index    map[string]int
	total    fpm.Tally
}

// Options configures an exploration.
type Options struct {
	// Miner selects the frequent-pattern-mining algorithm; FP-growth when
	// nil, matching the paper's experimental setup.
	Miner fpm.Miner
}

// Explore runs Algorithm 1: mine all itemsets with support >= minSup and
// collect their outcome tallies.
func Explore(db *fpm.TxDB, minSup float64, opts Options) (*Result, error) {
	// lint:ignore ctxflow Explore is the documented no-cancellation compatibility shim over ExploreContext; cancelable callers use ExploreContext directly
	return ExploreContext(context.Background(), db, minSup, opts)
}

// ExploreContext is Explore under a context: when the configured miner
// supports cancellation (fpm.ContextMiner), a canceled context aborts the
// mine at the next tree-recursion boundary and the error wraps ctx.Err().
// The async job engine and the HTTP server use this so canceled jobs and
// disconnected clients stop burning CPU.
//
// lint:hot
func ExploreContext(ctx context.Context, db *fpm.TxDB, minSup float64, opts Options) (*Result, error) {
	if minSup < 0 || minSup > 1 {
		return nil, fmt.Errorf("core: support threshold %v out of [0,1]", minSup)
	}
	miner := opts.Miner
	if miner == nil {
		miner = fpm.FPGrowth{}
	}
	minCount := fpm.MinCount(db.NumRows(), minSup)
	mined, err := fpm.MineWith(ctx, miner, db, minCount)
	if err != nil {
		return nil, fmt.Errorf("core: mining: %w", err)
	}
	r := &Result{
		DB:       db,
		MinSup:   minSup,
		MinCount: minCount,
		Miner:    miner.Name(),
		Patterns: make([]Pattern, len(mined)),
		index:    make(map[string]int, len(mined)),
		total:    db.TotalTally(),
	}
	for i, p := range mined {
		r.Patterns[i] = Pattern{Items: p.Items, Tally: p.Tally}
		r.index[p.Items.Key()] = i
	}
	return r, nil
}

// NumPatterns returns the number of frequent itemsets found (excluding
// the empty itemset).
func (r *Result) NumPatterns() int { return len(r.Patterns) }

// Total returns the tally of the whole dataset (the empty itemset).
func (r *Result) Total() fpm.Tally { return r.total }

// Lookup finds the mined pattern for an itemset. The empty itemset is
// always found and maps to the dataset totals.
func (r *Result) Lookup(is fpm.Itemset) (Pattern, bool) {
	if len(is) == 0 {
		return Pattern{Items: nil, Tally: r.total}, true
	}
	i, ok := r.index[is.Key()]
	if !ok {
		return Pattern{}, false
	}
	return r.Patterns[i], true
}

// Support returns the relative support of a tally.
func (r *Result) Support(t fpm.Tally) float64 {
	return float64(t.Total()) / float64(r.DB.NumRows())
}

// Rate returns the raw outcome rate k⁺/(k⁺+k⁻) of a tally under metric m
// (Eq. 2). When no instance has a non-⊥ outcome the rate is undefined and
// NaN is returned.
func (r *Result) Rate(t fpm.Tally, m Metric) float64 {
	kp, kn := m.Counts(t)
	if kp+kn == 0 {
		return math.NaN()
	}
	return float64(kp) / float64(kp+kn)
}

// PosteriorRate returns the Bayesian posterior over the rate (Sec. 3.3),
// which is well defined even for all-⊥ tallies.
func (r *Result) PosteriorRate(t fpm.Tally, m Metric) stats.PosteriorRate {
	kp, kn := m.Counts(t)
	return stats.NewPosteriorRate(float64(kp), float64(kn))
}

// GlobalRate returns f(D), the metric's rate over the whole dataset.
func (r *Result) GlobalRate(m Metric) float64 { return r.Rate(r.total, m) }

// safeRate returns the raw rate when defined and falls back to the
// posterior mean otherwise, so lattice-wide aggregates (Shapley sums,
// global divergence) stay finite. The fallback only triggers on itemsets
// where the metric is entirely ⊥.
func (r *Result) safeRate(t fpm.Tally, m Metric) float64 {
	if rate := r.Rate(t, m); !math.IsNaN(rate) {
		return rate
	}
	return r.PosteriorRate(t, m).Mean()
}

// DivergenceOfTally returns Δ_f for a tally: rate(t) − rate(D) (Eq. 1),
// with the safeRate fallback for all-⊥ tallies.
func (r *Result) DivergenceOfTally(t fpm.Tally, m Metric) float64 {
	return r.safeRate(t, m) - r.safeRate(r.total, m)
}

// Divergence returns Δ_f(I) for a frequent itemset (Eq. 1). The second
// return is false if the itemset is not frequent (not in the result).
// The empty itemset has divergence 0 by definition.
func (r *Result) Divergence(is fpm.Itemset, m Metric) (float64, bool) {
	if len(is) == 0 {
		return 0, true
	}
	p, ok := r.Lookup(is)
	if !ok {
		return 0, false
	}
	return r.DivergenceOfTally(p.Tally, m), true
}

// TStat returns the Welch t-statistic comparing the posterior rate on the
// tally with the posterior rate on the whole dataset (Sec. 3.3).
func (r *Result) TStat(t fpm.Tally, m Metric) float64 {
	return stats.WelchTPosterior(r.PosteriorRate(t, m), r.PosteriorRate(r.total, m))
}

// Ranked is a pattern annotated with the statistics used for ranking and
// reporting.
type Ranked struct {
	Items      fpm.Itemset
	Tally      fpm.Tally
	Support    float64
	Rate       float64
	Divergence float64
	T          float64
}

// ranked builds the annotation for one pattern; ok is false when the
// metric is undefined (all ⊥) on the pattern.
func (r *Result) ranked(p Pattern, m Metric) (Ranked, bool) {
	rate := r.Rate(p.Tally, m)
	if math.IsNaN(rate) {
		return Ranked{}, false
	}
	return Ranked{
		Items:      p.Items,
		Tally:      p.Tally,
		Support:    r.Support(p.Tally),
		Rate:       rate,
		Divergence: r.DivergenceOfTally(p.Tally, m),
		T:          r.TStat(p.Tally, m),
	}, true
}

// Describe annotates an arbitrary frequent itemset. It fails when the
// itemset is not frequent or the metric is undefined on it.
func (r *Result) Describe(is fpm.Itemset, m Metric) (Ranked, error) {
	p, ok := r.Lookup(is)
	if !ok {
		return Ranked{}, fmt.Errorf("core: itemset %s not frequent at support %v",
			r.DB.Catalog.Format(is), r.MinSup)
	}
	rk, ok := r.ranked(p, m)
	if !ok {
		return Ranked{}, fmt.Errorf("core: metric %s undefined on %s (all outcomes ⊥)",
			m.Name, r.DB.Catalog.Format(is))
	}
	return rk, nil
}

// RankOrder selects the sort direction for TopK.
type RankOrder int

const (
	// ByDivergence ranks by divergence descending (the paper's tables).
	ByDivergence RankOrder = iota
	// ByAbsDivergence ranks by |divergence| descending.
	ByAbsDivergence
	// ByNegDivergence ranks by divergence ascending (most negative first).
	ByNegDivergence
)

// TopK returns the k most divergent patterns under the metric and order.
// Patterns on which the metric is undefined are skipped. Ties break by
// higher t-statistic (more statistically significant first), then higher
// support, then lexicographic itemset order, for determinism.
func (r *Result) TopK(m Metric, k int, order RankOrder) []Ranked {
	rs := r.RankAll(m, order)
	if k < len(rs) {
		rs = rs[:k]
	}
	return rs
}

// RankAll annotates and sorts all patterns under the metric and order.
func (r *Result) RankAll(m Metric, order RankOrder) []Ranked {
	rs := make([]Ranked, 0, len(r.Patterns))
	for _, p := range r.Patterns {
		if rk, ok := r.ranked(p, m); ok {
			rs = append(rs, rk)
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		return lessRankedBy(rs[i], rs[j], order)
	})
	return rs
}

// rankKeyOf is the primary sort key of a Ranked pattern under an order.
func rankKeyOf(x Ranked, order RankOrder) float64 {
	switch order {
	case ByAbsDivergence:
		return math.Abs(x.Divergence)
	case ByNegDivergence:
		return -x.Divergence
	default:
		return x.Divergence
	}
}

// lessRankedBy is the ranking comparator shared by every API that
// reports patterns in ranking order: key descending, then higher
// t-statistic, then higher support, then lexicographic itemset order,
// for determinism.
func lessRankedBy(a, b Ranked, order RankOrder) bool {
	ka, kb := rankKeyOf(a, order), rankKeyOf(b, order)
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if ka != kb {
		return ka > kb
	}
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if a.T != b.T {
		return a.T > b.T
	}
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if a.Support != b.Support {
		return a.Support > b.Support
	}
	return lessItemsets(a.Items, b.Items)
}

func lessItemsets(a, b fpm.Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// FrequentItems returns all frequent single items.
func (r *Result) FrequentItems() []fpm.Item {
	var out []fpm.Item
	for _, p := range r.Patterns {
		if len(p.Items) == 1 {
			out = append(out, p.Items[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IndividualDivergence returns the divergence Δ(α) of each frequent
// single item — the "individual" measure contrasted with global
// divergence in Sec. 4.4. Items on which the metric is undefined are
// reported with NaN.
func (r *Result) IndividualDivergence(m Metric) map[fpm.Item]float64 {
	out := make(map[fpm.Item]float64)
	for _, it := range r.FrequentItems() {
		p, _ := r.Lookup(fpm.Itemset{it})
		rate := r.Rate(p.Tally, m)
		if math.IsNaN(rate) {
			out[it] = math.NaN()
			continue
		}
		out[it] = r.DivergenceOfTally(p.Tally, m)
	}
	return out
}
