package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fpm"
)

// rowSpec describes one test instance: attribute values plus ground truth
// and prediction.
type rowSpec struct {
	values []string
	truth  bool
	pred   bool
}

// buildClassifierDB assembles a TxDB with confusion-class outcomes from
// explicit row specs.
func buildClassifierDB(t testing.TB, attrNames []string, rows []rowSpec) *fpm.TxDB {
	t.Helper()
	b := dataset.NewBuilder(attrNames...)
	truth := make([]bool, len(rows))
	pred := make([]bool, len(rows))
	for i, r := range rows {
		if err := b.Add(r.values...); err != nil {
			t.Fatal(err)
		}
		truth[i] = r.truth
		pred[i] = r.pred
	}
	b.SortDomains()
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	classes, err := ConfusionClasses(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fpm.NewTxDB(d, classes, NumConfusionClasses)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// randomClassifierDB builds a reproducible random classifier database
// where every complete attribute combination is guaranteed to appear at
// least once (needed by the exact global-divergence axiom tests).
func randomClassifierDB(t testing.TB, seed int64, attrs, card, extraRows int) *fpm.TxDB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, attrs)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	var rows []rowSpec
	// Enumerate all card^attrs combinations once.
	total := 1
	for i := 0; i < attrs; i++ {
		total *= card
	}
	for idx := 0; idx < total; idx++ {
		vals := make([]string, attrs)
		x := idx
		for i := 0; i < attrs; i++ {
			vals[i] = fmt.Sprintf("v%d", x%card)
			x /= card
		}
		rows = append(rows, rowSpec{vals, rng.Intn(2) == 0, rng.Intn(2) == 0})
	}
	for i := 0; i < extraRows; i++ {
		vals := make([]string, attrs)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d", rng.Intn(card))
		}
		rows = append(rows, rowSpec{vals, rng.Intn(2) == 0, rng.Intn(2) == 0})
	}
	return buildClassifierDB(t, names, rows)
}

// explore is a test shorthand running the default exploration.
func explore(t testing.TB, db *fpm.TxDB, minSup float64) *Result {
	t.Helper()
	r, err := Explore(db, minSup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// mustItemset resolves item names or fails the test.
func mustItemset(t testing.TB, db *fpm.TxDB, names ...string) fpm.Itemset {
	t.Helper()
	is, err := db.Catalog.ItemsetByNames(names...)
	if err != nil {
		t.Fatal(err)
	}
	return is
}
