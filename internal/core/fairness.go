package core

import (
	"fmt"
	"math"

	"repro/internal/fpm"
)

// Group-fairness summary: the per-group confusion metrics and their gaps
// for one protected attribute. This packages the paper's motivating
// fairness use case (Sec. 1) into a direct API: divergence exploration
// finds *which* subgroups behave differently; this report quantifies the
// standard fairness criteria for a chosen attribute — statistical parity
// (predicted positive rate), equal opportunity (TPR), predictive
// equality (FPR), predictive parity (PPV) and accuracy equality.

// GroupMetrics holds one attribute value's confusion-based metrics.
// Metrics with an empty denominator are NaN.
type GroupMetrics struct {
	Item     fpm.Item
	Value    string
	Support  float64
	Positive float64 // predicted positive rate
	FPR      float64
	FNR      float64
	TPR      float64
	PPV      float64
	Accuracy float64
}

// FairnessReport summarizes one protected attribute.
type FairnessReport struct {
	AttrName string
	Groups   []GroupMetrics
	// Gaps are max−min across groups where the metric is defined.
	StatParityGap float64
	FPRGap        float64
	FNRGap        float64
	EqualOppGap   float64 // TPR gap
	PPVGap        float64
	AccuracyGap   float64
}

// Fairness computes the group metrics and gaps for a protected
// attribute. Group tallies are computed by a direct scan so that even
// groups below the exploration's support threshold are reported. The
// outcome classes must be the confusion encoding (NewClassifierExplorer
// / ConfusionClasses); other encodings return an error.
func (r *Result) Fairness(attrName string) (FairnessReport, error) {
	if r.DB.K != NumConfusionClasses {
		return FairnessReport{}, fmt.Errorf("core: fairness report needs confusion-class outcomes (K=%d)", r.DB.K)
	}
	cat := r.DB.Catalog
	attr := -1
	for a := 0; a < cat.NumAttrs(); a++ {
		if cat.AttrName(a) == attrName {
			attr = a
			break
		}
	}
	if attr < 0 {
		return FairnessReport{}, fmt.Errorf("core: unknown attribute %q", attrName)
	}
	card := cat.Cardinality(attr)
	tallies := make([]fpm.Tally, card)
	for row, c := range r.DB.Classes {
		tallies[r.DB.Data.Rows[row][attr]][c]++
	}
	rep := FairnessReport{AttrName: attrName}
	for v := 0; v < card; v++ {
		t := tallies[v]
		it := cat.ItemFor(attr, int32(v))
		g := GroupMetrics{
			Item:     it,
			Value:    r.DB.Data.Attrs[attr].Values[v],
			Support:  float64(t.Total()) / float64(r.DB.NumRows()),
			Positive: r.Rate(t, PredictedPositiveRate),
			FPR:      r.Rate(t, FPR),
			FNR:      r.Rate(t, FNR),
			TPR:      r.Rate(t, TPR),
			PPV:      r.Rate(t, PPV),
			Accuracy: r.Rate(t, Accuracy),
		}
		rep.Groups = append(rep.Groups, g)
	}
	rep.StatParityGap = gap(rep.Groups, func(g GroupMetrics) float64 { return g.Positive })
	rep.FPRGap = gap(rep.Groups, func(g GroupMetrics) float64 { return g.FPR })
	rep.FNRGap = gap(rep.Groups, func(g GroupMetrics) float64 { return g.FNR })
	rep.EqualOppGap = gap(rep.Groups, func(g GroupMetrics) float64 { return g.TPR })
	rep.PPVGap = gap(rep.Groups, func(g GroupMetrics) float64 { return g.PPV })
	rep.AccuracyGap = gap(rep.Groups, func(g GroupMetrics) float64 { return g.Accuracy })
	return rep, nil
}

func gap(groups []GroupMetrics, f func(GroupMetrics) float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	defined := false
	for _, g := range groups {
		v := f(g)
		if math.IsNaN(v) {
			continue
		}
		defined = true
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !defined {
		return math.NaN()
	}
	return hi - lo
}
