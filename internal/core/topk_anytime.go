package core

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// Anytime top-K: the interactive tier's ranking core. It rides the
// budgeted mine from internal/fpm (support-descending visit order,
// deadline/pattern cutoffs) and keeps the k most divergent patterns in
// O(k) memory, with two guarantees the tests pin down:
//
//   - At unlimited budget the answer is byte-identical to the exhaustive
//     Result.TopK. That requires the streaming heap to use the SAME
//     total order RankAll sorts by (key desc, then Welch t desc, then
//     support desc, then lexicographic itemset), not just the ranking
//     key — under a total order the top-k set is unique, so visit order
//     cannot matter.
//   - Under a budget, every reported pattern still carries its exact
//     statistics; budgets truncate the candidate stream, never distort
//     it. Approximation enters only via row sampling, and then every
//     estimate carries an explicit confidence interval
//     (stats.HoeffdingRadius for supports, stats.WilsonInterval for
//     rates — see DESIGN.md §14 for the math and its assumptions).

// DefaultConfidence is the two-sided confidence level for sampled-mine
// error bounds when AnytimeOptions.Confidence is zero.
const DefaultConfidence = 0.95

// defaultUpdateEvery is the OnUpdate cadence in visited patterns.
const defaultUpdateEvery = 4096

// AnytimeOptions configures ExploreTopKAnytime. The zero value is an
// unbudgeted, unsampled run — exactly ExploreTopK with a stronger
// ordering guarantee.
type AnytimeOptions struct {
	// Budget bounds the mine (deadline and/or pattern count); zero means
	// run to exhaustion.
	Budget fpm.AnytimeBudget
	// SampleRows, when in (0, NumRows), mines a uniform row sample of
	// that size instead of the full dataset. Estimates then carry
	// confidence intervals.
	SampleRows int
	// SampleSeed seeds the row sample for reproducibility.
	SampleSeed int64
	// Confidence is the two-sided level for the error bounds
	// (DefaultConfidence when zero).
	Confidence float64
	// OnUpdate, when set, receives a snapshot of the current top-k
	// (descending) every UpdateEvery visited patterns — the streaming
	// seam the jobs Tracker plugs into. The slice is freshly allocated
	// per call and safe to retain.
	OnUpdate func(top []RankedEstimate, visited int64)
	// UpdateEvery is the OnUpdate cadence in visited patterns
	// (defaultUpdateEvery when zero).
	UpdateEvery int64
}

// RankedEstimate is a Ranked pattern together with the confidence
// interval of each estimated statistic. On an unsampled run the
// intervals are degenerate: Lo == Hi == the exact value.
type RankedEstimate struct {
	Ranked
	SupportLo, SupportHi       float64
	RateLo, RateHi             float64
	DivergenceLo, DivergenceHi float64
}

// AnytimeTopK is the outcome of one anytime exploration.
type AnytimeTopK struct {
	// Top holds the best patterns seen, in the same descending order
	// Result.TopK uses.
	Top []RankedEstimate
	// Reason says whether the candidate stream was exhausted or why it
	// was cut short.
	Reason fpm.CompletionReason
	// Visited counts the frequent patterns the mine emitted before
	// stopping.
	Visited int64
	// Sampled reports whether the mine ran on a row sample.
	Sampled bool
	// SampleSize is the number of rows actually mined.
	SampleSize int
	// Confidence is the level of the reported intervals.
	Confidence float64
	// SupportEps is the Hoeffding half-width shared by every support
	// estimate (0 on an exact run).
	SupportEps float64
}

// Partial reports whether the result might be missing patterns.
func (a *AnytimeTopK) Partial() bool { return a.Reason.Partial() }

// orderKey returns the scalar ranking key for a divergence under an
// order.
func orderKey(order RankOrder, div float64) float64 {
	switch order {
	case ByAbsDivergence:
		return math.Abs(div)
	case ByNegDivergence:
		return -div
	default:
		return div
	}
}

// rankedBetter is the total order shared by RankAll's sort and the
// anytime heap: ranking key descending, then Welch t descending, then
// support descending, then lexicographic itemset. Because it is total,
// the top-k set under it is unique no matter what order candidates
// arrive in.
func rankedBetter(a, b *Ranked, order RankOrder) bool {
	ka, kb := orderKey(order, a.Divergence), orderKey(order, b.Divergence)
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if ka != kb {
		return ka > kb
	}
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if a.T != b.T {
		return a.T > b.T
	}
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if a.Support != b.Support {
		return a.Support > b.Support
	}
	return lessItemsets(a.Items, b.Items)
}

// estimateHeap is a min-heap under rankedBetter: the weakest kept
// pattern sits at the root, so a stronger candidate replaces it in
// O(log k).
type estimateHeap struct {
	items []RankedEstimate
	order RankOrder
}

func (h *estimateHeap) Len() int { return len(h.items) }
func (h *estimateHeap) Less(i, j int) bool {
	return rankedBetter(&h.items[j].Ranked, &h.items[i].Ranked, h.order)
}
func (h *estimateHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *estimateHeap) Push(x interface{}) {
	h.items = append(h.items, x.(RankedEstimate))
}
func (h *estimateHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// sorted returns the heap contents in descending rank order without
// disturbing the heap.
func (h *estimateHeap) sorted() []RankedEstimate {
	out := append([]RankedEstimate(nil), h.items...)
	// Insertion sort: k is interactive-small and the heap is nearly
	// ordered already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && rankedBetter(&out[j].Ranked, &out[j-1].Ranked, h.order); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ExploreTopKAnytime streams a (possibly budgeted, possibly sampled)
// mine and keeps the k most divergent patterns under the metric.
//
// The global rate f(D) is always computed exactly from the full
// dataset — only per-pattern statistics are estimated on a sample — so
// a sampled divergence estimate inherits exactly the pattern-rate
// interval, shifted by the constant global rate.
//
// lint:hot
func ExploreTopKAnytime(db *fpm.TxDB, minSup float64, m Metric, k int, order RankOrder, opts AnytimeOptions) (*AnytimeTopK, error) {
	if minSup < 0 || minSup > 1 {
		return nil, fmt.Errorf("core: support threshold %v out of [0,1]", minSup)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k %d < 1", k)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	conf := opts.Confidence
	// lint:ignore floatcmp the zero value is the explicit "use the default" sentinel
	if conf == 0 {
		conf = DefaultConfidence
	}
	if conf <= 0 || conf >= 1 {
		return nil, fmt.Errorf("core: confidence %v out of (0,1)", conf)
	}

	total := db.TotalTally()
	globalRate := rateOf(total, m)
	if math.IsNaN(globalRate) {
		return nil, fmt.Errorf("core: metric %s undefined on the whole dataset", m.Name)
	}
	globalPost := posteriorOf(total, m)

	mdb := db
	sampled := false
	supportEps := 0.0
	if opts.SampleRows > 0 && opts.SampleRows < db.NumRows() {
		mdb = fpm.SampleRows(db, opts.SampleRows, opts.SampleSeed)
		sampled = mdb != db
	}
	if sampled {
		supportEps = stats.HoeffdingRadius(mdb.NumRows(), conf)
	}
	minCount := fpm.MinCount(mdb.NumRows(), minSup)
	rows := float64(mdb.NumRows())

	updateEvery := opts.UpdateEvery
	if updateEvery <= 0 {
		updateEvery = defaultUpdateEvery
	}

	h := &estimateHeap{order: order}
	var seen int64
	info, err := fpm.FPGrowth{}.MineAnytimeVisit(mdb, minCount, opts.Budget, func(p fpm.FrequentPattern) error {
		seen++
		if opts.OnUpdate != nil && seen%updateEvery == 0 {
			opts.OnUpdate(h.sorted(), seen)
		}
		rate := rateOf(p.Tally, m)
		if math.IsNaN(rate) {
			return nil
		}
		rk := Ranked{
			Tally:      p.Tally,
			Support:    float64(p.Tally.Total()) / rows,
			Rate:       rate,
			Divergence: rate - globalRate,
			T:          welchOf(p.Tally, m, globalPost),
		}
		if h.Len() == k {
			// Full heap: only a candidate strictly better than the current
			// weakest (under the total order) displaces it. Items is still
			// the miner's borrowed slice here; rankedBetter only reads it.
			rk.Items = p.Items
			if !rankedBetter(&rk, &h.items[0].Ranked, order) {
				return nil
			}
			rk.Items = p.Items.Clone()
			h.items[0] = annotate(rk, sampled, conf, supportEps, globalRate, m)
			heap.Fix(h, 0)
		} else {
			rk.Items = p.Items.Clone()
			heap.Push(h, annotate(rk, sampled, conf, supportEps, globalRate, m))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &AnytimeTopK{
		Top:        h.sorted(),
		Reason:     info.Reason,
		Visited:    info.Patterns,
		Sampled:    sampled,
		SampleSize: mdb.NumRows(),
		Confidence: conf,
		SupportEps: supportEps,
	}
	return out, nil
}

// annotate attaches confidence intervals to a ranked pattern. On an
// exact run the intervals collapse to the point estimates.
func annotate(rk Ranked, sampled bool, conf, supportEps, globalRate float64, m Metric) RankedEstimate {
	e := RankedEstimate{Ranked: rk}
	if !sampled {
		e.SupportLo, e.SupportHi = rk.Support, rk.Support
		e.RateLo, e.RateHi = rk.Rate, rk.Rate
		e.DivergenceLo, e.DivergenceHi = rk.Divergence, rk.Divergence
		return e
	}
	e.SupportLo = math.Max(0, rk.Support-supportEps)
	e.SupportHi = math.Min(1, rk.Support+supportEps)
	kp, kn := m.Counts(rk.Tally)
	e.RateLo, e.RateHi = stats.WilsonInterval(kp, kp+kn, conf)
	// The global rate is exact, so the divergence interval is the rate
	// interval shifted by a constant.
	e.DivergenceLo = e.RateLo - globalRate
	e.DivergenceHi = e.RateHi - globalRate
	return e
}
