package core

import (
	"testing"

	"repro/internal/fpm"
)

func TestClosedPatternsLossless(t *testing.T) {
	db := randomClassifierDB(t, 31, 3, 2, 150)
	r := explore(t, db, 0.02)
	closed := r.ClosedPatterns()
	if len(closed) == 0 || len(closed) > len(r.Patterns) {
		t.Fatalf("closed set size %d of %d", len(closed), len(r.Patterns))
	}
	closedKeys := map[string]bool{}
	for _, p := range closed {
		closedKeys[p.Items.Key()] = true
	}
	// Losslessness: every frequent pattern has a closed superset with the
	// same support (possibly itself, or the empty itemset when the
	// pattern covers the whole dataset).
	for _, p := range r.Patterns {
		rep, ok := r.SmallestClosedSuperset(p.Items)
		if !ok {
			t.Fatalf("no closed superset for %v", p.Items)
		}
		if rep.Tally != p.Tally {
			t.Fatalf("closed representative of %v has different tally", p.Items)
		}
		if !rep.Items.ContainsAll(p.Items) {
			t.Fatalf("representative %v does not contain %v", rep.Items, p.Items)
		}
	}
	// Definition check: a closed pattern has no 1-extension with the same
	// support.
	for _, p := range closed {
		for _, q := range r.Patterns {
			if len(q.Items) == len(p.Items)+1 && q.Items.ContainsAll(p.Items) &&
				q.Tally.Total() == p.Tally.Total() {
				t.Fatalf("pattern %v reported closed but %v has equal support",
					p.Items, q.Items)
			}
		}
	}
}

func TestClosedPatternsCompress(t *testing.T) {
	// A null attribute z (duplicated rows) makes every pattern containing
	// z non-closed... z=0 has the same support as its parent? No: the
	// parent has twice the support. Instead use a fully redundant copy:
	// attribute y identical to x makes (x=v) non-closed because
	// (x=v, y=v) has equal support.
	var rows []rowSpec
	for i := 0; i < 30; i++ {
		v := "0"
		if i%3 == 0 {
			v = "1"
		}
		rows = append(rows, rowSpec{[]string{v, v}, i%2 == 0, i%5 == 0})
	}
	db := buildClassifierDB(t, []string{"x", "y"}, rows)
	r := explore(t, db, 0.01)
	closed := r.ClosedPatterns()
	for _, p := range closed {
		if len(p.Items) == 1 {
			t.Errorf("singleton %v reported closed despite its perfect copy", p.Items)
		}
	}
	if len(closed) >= len(r.Patterns) {
		t.Errorf("no compression: %d closed of %d", len(closed), len(r.Patterns))
	}
}

func TestSmallestClosedSupersetMissing(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	if _, ok := r.SmallestClosedSuperset(fpm.Itemset{999}); ok {
		t.Error("unknown itemset got a representative")
	}
}
