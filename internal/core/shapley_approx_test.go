package core

import (
	"math"
	"testing"
)

func TestApproxShapleyConvergesToExact(t *testing.T) {
	db := randomClassifierDB(t, 21, 4, 2, 200)
	r := explore(t, db, 0.01)
	checked := 0
	for _, p := range r.Patterns {
		if len(p.Items) < 3 {
			continue
		}
		exact, err := r.LocalShapley(p.Items, ErrorRate)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := r.ApproxLocalShapley(p.Items, ErrorRate, ApproxShapleyConfig{
			Permutations: 4000, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			if approx[i].Item != exact[i].Item {
				t.Fatalf("item order mismatch")
			}
			if math.Abs(approx[i].Value-exact[i].Value) > 0.02 {
				t.Errorf("pattern %v item %v: approx %v vs exact %v",
					p.Items, exact[i].Item, approx[i].Value, exact[i].Value)
			}
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no 3-item patterns to check")
	}
}

// Efficiency is exact for the permutation estimator: the telescoping sum
// makes every sample sum to Δ(I).
func TestApproxShapleyEfficiencyExact(t *testing.T) {
	db := randomClassifierDB(t, 22, 3, 2, 120)
	r := explore(t, db, 0.02)
	for _, p := range r.Patterns {
		if len(p.Items) < 2 {
			continue
		}
		cs, err := r.ApproxLocalShapley(p.Items, ErrorRate, ApproxShapleyConfig{
			Permutations: 7, Seed: 1, // tiny on purpose: efficiency must hold anyway
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range cs {
			sum += c.Value
		}
		div := r.DivergenceOfTally(p.Tally, ErrorRate)
		if !almost(sum, div, 1e-9) {
			t.Fatalf("efficiency violated: Σ=%v, Δ=%v on %v", sum, div, p.Items)
		}
	}
}

func TestApproxShapleyDeterministicGivenSeed(t *testing.T) {
	db := randomClassifierDB(t, 23, 3, 2, 100)
	r := explore(t, db, 0.02)
	var target Pattern
	for _, p := range r.Patterns {
		if len(p.Items) == 3 {
			target = p
			break
		}
	}
	if target.Items == nil {
		t.Skip("no 3-item pattern")
	}
	a, err := r.ApproxLocalShapley(target.Items, ErrorRate, ApproxShapleyConfig{Permutations: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ApproxLocalShapley(target.Items, ErrorRate, ApproxShapleyConfig{Permutations: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed estimates differ")
		}
	}
}

func TestApproxShapleyErrors(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	if _, err := r.ApproxLocalShapley(nil, FPR, ApproxShapleyConfig{}); err == nil {
		t.Error("empty itemset accepted")
	}
	if _, err := r.ApproxLocalShapley(mustItemset(t, db, "g=1", "h=y"), FPR, ApproxShapleyConfig{}); err == nil {
		// (g=1, h=y) has empty support in the fixture, hence not frequent.
		t.Error("infrequent itemset accepted")
	}
}
