// Package core implements the paper's primary contribution: divergence of
// classification behavior over frequent itemsets (Sec. 3), its Bayesian
// statistical significance (Sec. 3.3), local Shapley item contributions
// (Sec. 4.1, Eq. 5), corrective items (Sec. 4.2), global item divergence
// (Sec. 4.3, Eq. 8), and redundancy pruning (Sec. 3.5).
//
// The engine runs Algorithm 1: a frequent-pattern miner (package fpm)
// threads per-itemset outcome tallies through its pass, and every metric
// is evaluated from those tallies without rescanning the data. One mining
// run therefore serves all metrics simultaneously.
package core

import (
	"fmt"

	"repro/internal/fpm"
)

// Outcome classes for classifier analysis: the confusion cell of each
// instance, given ground truth v and prediction u.
const (
	ClassTP uint8 = iota // u ∧ v
	ClassFP              // u ∧ ¬v
	ClassFN              // ¬u ∧ v
	ClassTN              // ¬u ∧ ¬v

	// NumConfusionClasses is the K to pass to fpm.NewTxDB for classifier
	// analysis.
	NumConfusionClasses = 4
)

// Outcome classes for a generic Boolean outcome function o : D → {T,F,⊥}
// (Def. 3.2).
const (
	OutcomeT   uint8 = iota // o(x) = T
	OutcomeF                // o(x) = F
	OutcomeBot              // o(x) = ⊥

	// NumOutcomeClasses is the K for generic outcome analysis.
	NumOutcomeClasses = 3
)

// ConfusionClasses maps ground truth and predictions to per-row confusion
// classes, the outcome encoding used for classifier divergence analysis.
func ConfusionClasses(truth, pred []bool) ([]uint8, error) {
	if len(truth) != len(pred) {
		return nil, fmt.Errorf("core: %d truth labels vs %d predictions", len(truth), len(pred))
	}
	classes := make([]uint8, len(truth))
	for i := range truth {
		switch {
		case pred[i] && truth[i]:
			classes[i] = ClassTP
		case pred[i] && !truth[i]:
			classes[i] = ClassFP
		case !pred[i] && truth[i]:
			classes[i] = ClassFN
		default:
			classes[i] = ClassTN
		}
	}
	return classes, nil
}

// Metric is an outcome rate f over itemset tallies: the positive rate
// k⁺/(k⁺+k⁻) where k⁺ sums the tally over the Pos class mask and k⁻ over
// the Neg mask; classes in neither mask are ⊥ (excluded), exactly as in
// Def. 3.2. All the paper's performance measures are instances.
type Metric struct {
	Name string
	Pos  uint16 // class mask contributing to k⁺
	Neg  uint16 // class mask contributing to k⁻
}

// Confusion-based metrics (classifier analysis, K = 4).
var (
	// FPR is the false positive rate FP/(FP+TN).
	FPR = Metric{"FPR", 1 << ClassFP, 1 << ClassTN}
	// FNR is the false negative rate FN/(FN+TP).
	FNR = Metric{"FNR", 1 << ClassFN, 1 << ClassTP}
	// ErrorRate is the misclassification rate (FP+FN)/n.
	ErrorRate = Metric{"ER", 1<<ClassFP | 1<<ClassFN, 1<<ClassTP | 1<<ClassTN}
	// Accuracy is (TP+TN)/n.
	Accuracy = Metric{"ACC", 1<<ClassTP | 1<<ClassTN, 1<<ClassFP | 1<<ClassFN}
	// PPV is the positive predictive value (precision) TP/(TP+FP).
	PPV = Metric{"PPV", 1 << ClassTP, 1 << ClassFP}
	// TPR is the true positive rate (recall) TP/(TP+FN).
	TPR = Metric{"TPR", 1 << ClassTP, 1 << ClassFN}
	// TNR is the true negative rate TN/(TN+FP).
	TNR = Metric{"TNR", 1 << ClassTN, 1 << ClassFP}
	// FDR is the false discovery rate FP/(FP+TP).
	FDR = Metric{"FDR", 1 << ClassFP, 1 << ClassTP}
	// FOR is the false omission rate FN/(FN+TN).
	FOR = Metric{"FOR", 1 << ClassFN, 1 << ClassTN}
	// PredictedPositiveRate is (TP+FP)/n, the classifier's positive rate.
	PredictedPositiveRate = Metric{"PredPos", 1<<ClassTP | 1<<ClassFP, 1<<ClassFN | 1<<ClassTN}
	// TruePositiveShare is (TP+FN)/n, the ground-truth positive rate.
	TruePositiveShare = Metric{"TruePos", 1<<ClassTP | 1<<ClassFN, 1<<ClassFP | 1<<ClassTN}
)

// OutcomeRate is the positive rate of a generic Boolean outcome function
// encoded with OutcomeT/OutcomeF/OutcomeBot classes (K = 3).
var OutcomeRate = Metric{"rate", 1 << OutcomeT, 1 << OutcomeF}

// ConfusionMetrics lists all confusion-based metrics supported out of the
// box, in the order they are commonly reported.
func ConfusionMetrics() []Metric {
	return []Metric{FPR, FNR, ErrorRate, Accuracy, PPV, TPR, TNR, FDR, FOR,
		PredictedPositiveRate, TruePositiveShare}
}

// MetricByName resolves a metric by its (case-sensitive) name.
func MetricByName(name string) (Metric, error) {
	for _, m := range ConfusionMetrics() {
		if m.Name == name {
			return m, nil
		}
	}
	if name == OutcomeRate.Name {
		return OutcomeRate, nil
	}
	return Metric{}, fmt.Errorf("core: unknown metric %q", name)
}

// Counts splits a tally into the metric's (k⁺, k⁻) observation counts.
func (m Metric) Counts(t fpm.Tally) (kPos, kNeg int64) {
	return t.Masked(m.Pos), t.Masked(m.Neg)
}

// Validate checks that the metric's masks are non-empty and disjoint.
func (m Metric) Validate() error {
	if m.Pos == 0 || m.Neg == 0 {
		return fmt.Errorf("core: metric %q has an empty class mask", m.Name)
	}
	if m.Pos&m.Neg != 0 {
		return fmt.Errorf("core: metric %q has overlapping class masks", m.Name)
	}
	return nil
}
