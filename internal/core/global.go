package core

import (
	"fmt"
	"math"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// GlobalDivergence computes the support-bounded global divergence
// Δ̃^g(α, s) of every frequent single item (Def. 4.3, Eq. 8): the
// generalized Shapley value measuring how much the item changes
// divergence when added to frequent contexts across the whole lattice.
//
// The computation is a single pass over the mined patterns: each frequent
// pattern P containing item α contributes
//
//	w(|P|−1) / Π_{b ∈ attrs(P)} m_b · (Δ(P) − Δ(P \ α))
//
// to α's total, where w is the attribute-level coalition weight of Eq. 8.
func (r *Result) GlobalDivergence(m Metric) map[fpm.Item]float64 {
	return r.globalFromDivergence(func(t fpm.Tally) float64 {
		return r.DivergenceOfTally(t, m)
	})
}

// globalFromDivergence computes Eq. 8 for all frequent single items given
// an arbitrary divergence function over tallies. Keeping the divergence
// abstract makes the linearity axiom of Theorem 4.1 directly testable.
func (r *Result) globalFromDivergence(divOf func(fpm.Tally) float64) map[fpm.Item]float64 {
	cat := r.DB.Catalog
	nAttrs := cat.NumAttrs()
	out := make(map[fpm.Item]float64)
	for _, it := range r.FrequentItems() {
		out[it] = 0
	}
	for _, p := range r.Patterns {
		dP := divOf(p.Tally)
		// Domain-size product over the attributes of P = B ∪ attr(α).
		prod := 1.0
		for _, it := range p.Items {
			prod *= float64(cat.Cardinality(cat.Attr(it)))
		}
		w := stats.GlobalShapleyWeight(len(p.Items)-1, 1, nAttrs) / prod
		for _, alpha := range p.Items {
			var dJ float64
			if len(p.Items) > 1 {
				j := p.Items.Without(alpha)
				pj, ok := r.Lookup(j)
				if !ok {
					// Unreachable for consistent results; skip defensively.
					continue
				}
				dJ = divOf(pj.Tally)
			}
			out[alpha] += w * (dP - dJ)
		}
	}
	return out
}

// GlobalDivergenceOf computes Δ̃^g(I, s) for an arbitrary frequent
// itemset I (Eq. 8 in full generality). For single items it agrees with
// GlobalDivergence.
func (r *Result) GlobalDivergenceOf(is fpm.Itemset, m Metric) (float64, error) {
	if len(is) == 0 {
		return 0, fmt.Errorf("core: global divergence of the empty itemset")
	}
	if _, ok := r.Lookup(is); !ok {
		return 0, fmt.Errorf("core: itemset %s not frequent at support %v",
			r.DB.Catalog.Format(is), r.MinSup)
	}
	cat := r.DB.Catalog
	nAttrs := cat.NumAttrs()
	var sum float64
	for _, p := range r.Patterns {
		if len(p.Items) < len(is) || !p.Items.ContainsAll(is) {
			continue
		}
		j := p.Items
		for _, alpha := range is {
			j = j.Without(alpha)
		}
		pj, ok := r.Lookup(j)
		if !ok {
			continue
		}
		prod := 1.0
		for _, it := range p.Items {
			prod *= float64(cat.Cardinality(cat.Attr(it)))
		}
		w := stats.GlobalShapleyWeight(len(j), len(is), nAttrs) / prod
		sum += w * (r.DivergenceOfTally(p.Tally, m) - r.DivergenceOfTally(pj.Tally, m))
	}
	return sum, nil
}

// ItemDivergenceComparison pairs the individual and global divergence of
// an item, the two measurements contrasted in Sec. 4.4 and Figures 4, 5
// and 9.
type ItemDivergenceComparison struct {
	Item       fpm.Item
	Individual float64
	Global     float64
}

// CompareItemDivergence returns, for every frequent item, both its
// individual divergence Δ(α) and its global divergence Δ̃^g(α, s), sorted
// by decreasing global divergence.
func (r *Result) CompareItemDivergence(m Metric) []ItemDivergenceComparison {
	indiv := r.IndividualDivergence(m)
	global := r.GlobalDivergence(m)
	out := make([]ItemDivergenceComparison, 0, len(global))
	for _, it := range r.FrequentItems() {
		out = append(out, ItemDivergenceComparison{
			Item:       it,
			Individual: indiv[it],
			Global:     global[it],
		})
	}
	sortComparisons(out)
	return out
}

func sortComparisons(cs []ItemDivergenceComparison) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && greaterGlobal(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func greaterGlobal(a, b ItemDivergenceComparison) bool {
	ga, gb := a.Global, b.Global
	if math.IsNaN(ga) {
		ga = math.Inf(-1)
	}
	if math.IsNaN(gb) {
		gb = math.Inf(-1)
	}
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if ga != gb {
		return ga > gb
	}
	return a.Item < b.Item
}
