package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the full ranked exploration for one metric as CSV:
// itemset, length, support, rate, divergence, t-statistic, p-value, and
// the metric's (k⁺, k⁻) observation counts. The output feeds downstream
// tooling (spreadsheets, notebooks, dashboards) without re-running the
// exploration.
func (r *Result) WriteCSV(w io.Writer, m Metric, order RankOrder) error {
	cw := csv.NewWriter(w)
	header := []string{"itemset", "length", "support", "rate", "divergence", "t", "p_value", "k_pos", "k_neg"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: writing CSV header: %w", err)
	}
	for _, rk := range r.RankAll(m, order) {
		kp, kn := m.Counts(rk.Tally)
		rec := []string{
			r.DB.Catalog.Format(rk.Items),
			strconv.Itoa(len(rk.Items)),
			formatF(rk.Support),
			formatF(rk.Rate),
			formatF(rk.Divergence),
			formatF(rk.T),
			formatF(r.PValue(rk.Tally, m)),
			strconv.FormatInt(kp, 10),
			strconv.FormatInt(kn, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("core: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }
