package core

import "repro/internal/fpm"

// ClosedPatterns returns the closed frequent itemsets: patterns with no
// frequent superset of identical support. Closed patterns are a lossless
// summary of the exploration — every frequent itemset's tally equals the
// tally of its smallest closed superset — and complement the lossy
// ε-redundancy pruning of Sec. 3.5 when a compact but exact result is
// needed.
//
// The computation is one pass over the mined patterns: a pattern P of
// length ℓ "closes over" each (ℓ−1)-subset with the same support, so any
// subset matched that way is not closed.
func (r *Result) ClosedPatterns() []Pattern {
	notClosed := make([]bool, len(r.Patterns))
	for _, p := range r.Patterns {
		if len(p.Items) < 2 {
			// Length-1 patterns are handled below via their parents; the
			// empty itemset is not part of the result.
			continue
		}
		support := p.Tally.Total()
		for _, alpha := range p.Items {
			sub := p.Items.Without(alpha)
			if idx, ok := r.index[sub.Key()]; ok &&
				r.Patterns[idx].Tally.Total() == support {
				notClosed[idx] = true
			}
		}
	}
	// A length-1 pattern can also be closed w.r.t. the full dataset: if
	// its support equals |D| it is subsumed by the empty itemset, which by
	// convention is reported only when it is itself closed (always true);
	// we still keep such items out of the closed set.
	total := int64(r.DB.NumRows())
	var out []Pattern
	for i, p := range r.Patterns {
		if notClosed[i] {
			continue
		}
		if len(p.Items) == 1 && p.Tally.Total() == total {
			continue
		}
		out = append(out, p)
	}
	return out
}

// SmallestClosedSuperset returns the minimal-length closed superset of a
// frequent itemset (itself, when closed). This is the canonical
// representative whose tally equals the query's.
func (r *Result) SmallestClosedSuperset(is fpm.Itemset) (Pattern, bool) {
	p, ok := r.Lookup(is)
	if !ok {
		return Pattern{}, false
	}
	support := p.Tally.Total()
	current := p
	for {
		extended := false
		for _, q := range r.Patterns {
			if len(q.Items) != len(current.Items)+1 {
				continue
			}
			if q.Tally.Total() == support && q.Items.ContainsAll(current.Items) {
				current = q
				extended = true
				break
			}
		}
		if !extended {
			return current, true
		}
	}
}
