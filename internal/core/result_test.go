package core

import (
	"math"
	"testing"

	"repro/internal/fpm"
)

// fixtureDB builds a tiny dataset with a planted FPR divergence: group
// g=1 accumulates false positives while g=0 is mostly correct.
func fixtureDB(t testing.TB) *fpm.TxDB {
	t.Helper()
	var rows []rowSpec
	// g=1, h=x: 4 FP, 2 TN  -> FPR 0.667
	for i := 0; i < 4; i++ {
		rows = append(rows, rowSpec{[]string{"1", "x"}, false, true})
	}
	for i := 0; i < 2; i++ {
		rows = append(rows, rowSpec{[]string{"1", "x"}, false, false})
	}
	// g=0, h=x: 1 FP, 5 TN -> FPR 0.167
	rows = append(rows, rowSpec{[]string{"0", "x"}, false, true})
	for i := 0; i < 5; i++ {
		rows = append(rows, rowSpec{[]string{"0", "x"}, false, false})
	}
	// g=0, h=y: 4 TP, 4 FN (no FPR information)
	for i := 0; i < 4; i++ {
		rows = append(rows, rowSpec{[]string{"0", "y"}, true, true})
		rows = append(rows, rowSpec{[]string{"0", "y"}, true, false})
	}
	return buildClassifierDB(t, []string{"g", "h"}, rows)
}

func TestExploreBasics(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	if r.NumPatterns() == 0 {
		t.Fatal("no patterns mined")
	}
	// Overall FPR: 5 FP, 7 TN -> 5/12.
	if got := r.GlobalRate(FPR); !almost(got, 5.0/12, 1e-12) {
		t.Errorf("global FPR = %v, want %v", got, 5.0/12)
	}
	// Divergence of g=1.
	g1 := mustItemset(t, db, "g=1")
	div, ok := r.Divergence(g1, FPR)
	if !ok {
		t.Fatal("g=1 not frequent")
	}
	if want := 4.0/6 - 5.0/12; !almost(div, want, 1e-12) {
		t.Errorf("Δ_FPR(g=1) = %v, want %v", div, want)
	}
	// Empty itemset divergence is 0 by definition.
	if div, ok := r.Divergence(nil, FPR); !ok || div != 0 {
		t.Errorf("Δ(∅) = %v, %v, want 0, true", div, ok)
	}
}

func TestExploreInputValidation(t *testing.T) {
	db := fixtureDB(t)
	if _, err := Explore(db, -0.1, Options{}); err == nil {
		t.Error("negative support accepted")
	}
	if _, err := Explore(db, 1.5, Options{}); err == nil {
		t.Error("support > 1 accepted")
	}
}

func TestExploreMinersAgree(t *testing.T) {
	db := fixtureDB(t)
	ra, err := Explore(db, 0.1, Options{Miner: fpm.Apriori{}})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Explore(db, 0.1, Options{Miner: fpm.FPGrowth{}})
	if err != nil {
		t.Fatal(err)
	}
	if ra.NumPatterns() != rf.NumPatterns() {
		t.Fatalf("pattern counts differ: %d vs %d", ra.NumPatterns(), rf.NumPatterns())
	}
	for _, p := range ra.Patterns {
		q, ok := rf.Lookup(p.Items)
		if !ok || q.Tally != p.Tally {
			t.Fatalf("mismatch at %v", p.Items)
		}
	}
}

func TestRateUndefinedIsNaN(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	// h=y has only TP/FN rows: FPR undefined there.
	hy := mustItemset(t, db, "h=y", "g=0")
	p, ok := r.Lookup(hy)
	if !ok {
		t.Fatal("itemset not frequent")
	}
	if got := r.Rate(p.Tally, FPR); !math.IsNaN(got) {
		t.Errorf("Rate on all-⊥ itemset = %v, want NaN", got)
	}
	// The posterior remains defined (uniform prior).
	post := r.PosteriorRate(p.Tally, FPR)
	if post.Mean() != 0.5 {
		t.Errorf("posterior mean = %v, want 0.5", post.Mean())
	}
	// Describe must fail cleanly.
	if _, err := r.Describe(hy, FPR); err == nil {
		t.Error("Describe on all-⊥ itemset succeeded")
	}
}

func TestLookupMissing(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.4) // high threshold: many itemsets infrequent
	rare := mustItemset(t, db, "g=1", "h=x")
	if _, ok := r.Lookup(rare); ok {
		t.Skip("fixture itemset unexpectedly frequent; adjust threshold")
	}
	if _, ok := r.Divergence(rare, FPR); ok {
		t.Error("Divergence reported for infrequent itemset")
	}
	if _, err := r.Describe(rare, FPR); err == nil {
		t.Error("Describe succeeded for infrequent itemset")
	}
}

func TestTopKOrdering(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	top := r.TopK(FPR, 3, ByDivergence)
	if len(top) == 0 {
		t.Fatal("empty TopK")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Divergence > top[i-1].Divergence {
			t.Errorf("TopK not sorted: %v then %v", top[i-1].Divergence, top[i].Divergence)
		}
	}
	// The most FPR-divergent itemsets must involve g=1.
	g1 := mustItemset(t, db, "g=1")
	if !top[0].Items.ContainsAll(g1) {
		t.Errorf("top divergent itemset %v does not contain g=1",
			db.Catalog.Format(top[0].Items))
	}
	// Negative order surfaces the opposite end.
	neg := r.TopK(FPR, 1, ByNegDivergence)
	if len(neg) == 0 || neg[0].Divergence > top[0].Divergence {
		t.Log("ok") // just ensure it runs and returns the minimum first
	}
	abs := r.RankAll(FPR, ByAbsDivergence)
	for i := 1; i < len(abs); i++ {
		if math.Abs(abs[i].Divergence) > math.Abs(abs[i-1].Divergence)+1e-15 {
			t.Errorf("ByAbsDivergence not sorted at %d", i)
		}
	}
}

func TestTStatGrowsWithEvidence(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	// Same rate, more observations -> larger t. Construct tallies directly.
	var small, large fpm.Tally
	small[ClassFP], small[ClassTN] = 8, 2
	large[ClassFP], large[ClassTN] = 80, 20
	if r.TStat(large, FPR) <= r.TStat(small, FPR) {
		t.Error("t-statistic did not grow with sample size")
	}
}

func TestIndividualDivergence(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	ind := r.IndividualDivergence(FPR)
	g1 := mustItemset(t, db, "g=1")[0]
	g0 := mustItemset(t, db, "g=0")[0]
	if ind[g1] <= 0 {
		t.Errorf("Δ(g=1) = %v, want > 0", ind[g1])
	}
	if ind[g0] >= 0 {
		t.Errorf("Δ(g=0) = %v, want < 0", ind[g0])
	}
}

func TestFrequentItemsSortedUnique(t *testing.T) {
	db := randomClassifierDB(t, 3, 3, 3, 100)
	r := explore(t, db, 0.01)
	items := r.FrequentItems()
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			t.Fatal("FrequentItems not strictly increasing")
		}
	}
}

// Supports and divergences reported by Result agree with direct recounts.
func TestResultConsistentWithDirectScan(t *testing.T) {
	db := randomClassifierDB(t, 11, 3, 2, 60)
	r := explore(t, db, 0.1)
	for _, p := range r.Patterns {
		direct := db.TallyOf(p.Items)
		if direct != p.Tally {
			t.Fatalf("tally mismatch on %v", p.Items)
		}
		if got, want := r.Support(p.Tally), float64(direct.Total())/float64(db.NumRows()); !almost(got, want, 1e-12) {
			t.Fatalf("support mismatch on %v", p.Items)
		}
	}
}
