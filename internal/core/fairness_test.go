package core

import (
	"math"
	"testing"

	"repro/internal/fpm"
)

func TestFairnessReportGaps(t *testing.T) {
	// Group g=1: FPR 0.8; group g=0: FPR 0.25. Known gaps.
	var rows []rowSpec
	add := func(g string, nTP, nFP, nFN, nTN int) {
		for i := 0; i < nTP; i++ {
			rows = append(rows, rowSpec{[]string{g}, true, true})
		}
		for i := 0; i < nFP; i++ {
			rows = append(rows, rowSpec{[]string{g}, false, true})
		}
		for i := 0; i < nFN; i++ {
			rows = append(rows, rowSpec{[]string{g}, true, false})
		}
		for i := 0; i < nTN; i++ {
			rows = append(rows, rowSpec{[]string{g}, false, false})
		}
	}
	add("1", 6, 8, 4, 2)  // FPR 0.8, TPR 0.6, pos rate 0.7
	add("0", 5, 5, 5, 15) // FPR 0.25, TPR 0.5, pos rate ~0.333
	db := buildClassifierDB(t, []string{"g"}, rows)
	r := explore(t, db, 0.05)
	rep, err := r.Fairness("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("groups = %d", len(rep.Groups))
	}
	if !almost(rep.FPRGap, 0.8-0.25, 1e-12) {
		t.Errorf("FPR gap = %v, want 0.55", rep.FPRGap)
	}
	if !almost(rep.EqualOppGap, 0.6-0.5, 1e-12) {
		t.Errorf("equal opportunity gap = %v, want 0.1", rep.EqualOppGap)
	}
	if !almost(rep.StatParityGap, 0.7-1.0/3, 1e-9) {
		t.Errorf("statistical parity gap = %v", rep.StatParityGap)
	}
	// Per-group values carried through.
	for _, g := range rep.Groups {
		switch g.Value {
		case "1":
			if !almost(g.FPR, 0.8, 1e-12) || !almost(g.Support, 0.4, 1e-12) {
				t.Errorf("group 1 metrics %+v", g)
			}
		case "0":
			if !almost(g.FPR, 0.25, 1e-12) {
				t.Errorf("group 0 metrics %+v", g)
			}
		}
	}
}

func TestFairnessUndefinedMetricsAreNaN(t *testing.T) {
	// Group "pos" has only positive ground truth: FPR undefined there but
	// defined for the other group; gap must still be computable from the
	// defined groups (here: a single group -> gap 0).
	rows := []rowSpec{
		{[]string{"pos"}, true, true},
		{[]string{"pos"}, true, false},
		{[]string{"neg"}, false, true},
		{[]string{"neg"}, false, false},
		{[]string{"neg"}, false, false},
	}
	db := buildClassifierDB(t, []string{"grp"}, rows)
	r := explore(t, db, 0.05)
	rep, err := r.Fairness("grp")
	if err != nil {
		t.Fatal(err)
	}
	var posGroup GroupMetrics
	for _, g := range rep.Groups {
		if g.Value == "pos" {
			posGroup = g
		}
	}
	if !math.IsNaN(posGroup.FPR) {
		t.Errorf("FPR of all-positive group = %v, want NaN", posGroup.FPR)
	}
	if math.IsNaN(rep.FPRGap) {
		t.Error("FPR gap NaN despite one defined group")
	}
	if rep.FPRGap != 0 {
		t.Errorf("single-group FPR gap = %v, want 0", rep.FPRGap)
	}
}

func TestFairnessErrors(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	if _, err := r.Fairness("ghost"); err == nil {
		t.Error("unknown attribute accepted")
	}
	// Generic-outcome explorations are rejected.
	classes := make([]uint8, db.NumRows())
	odb, err := fpm.NewTxDB(db.Data, classes, NumOutcomeClasses)
	if err != nil {
		t.Fatal(err)
	}
	or := explore(t, odb, 0.05)
	if _, err := or.Fairness("g"); err == nil {
		t.Error("non-confusion outcomes accepted")
	}
}
