package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fpm"
)

// Efficiency axiom (Theorem 4.1, Eq. 7): with the support threshold low
// enough that every non-empty-support itemset is frequent and every
// complete attribute combination occurs, the global divergences of all
// items sum to the average divergence over the complete itemsets I_A.
func TestGlobalDivergenceEfficiency(t *testing.T) {
	// 3 attrs × 2 values, all 8 combos present: I_A fully supported.
	db := randomClassifierDB(t, 17, 3, 2, 80)
	r := explore(t, db, 0) // minCount = 1
	// Use a ⊥-free metric so divergence is defined on every itemset.
	m := TruePositiveShare

	global := r.GlobalDivergence(m)
	var lhs float64
	for _, v := range global {
		lhs += v
	}

	// Right-hand side: average Δ over all complete itemsets (2^3 of them,
	// all frequent by construction).
	cat := db.Catalog
	var rhs float64
	count := 0
	for _, p := range r.Patterns {
		if len(p.Items) != cat.NumAttrs() {
			continue
		}
		rhs += r.DivergenceOfTally(p.Tally, m)
		count++
	}
	if count != 8 {
		t.Fatalf("expected 8 complete itemsets, found %d", count)
	}
	rhs /= float64(count)

	if !almost(lhs, rhs, 1e-9) {
		t.Errorf("efficiency axiom: Σ Δ^g = %v, mean Δ(I_A) = %v", lhs, rhs)
	}
}

// Efficiency must hold for several random datasets and domain sizes.
func TestGlobalDivergenceEfficiencyVariants(t *testing.T) {
	shapes := []struct {
		attrs, card int
		seed        int64
	}{
		{2, 3, 5},
		{3, 2, 6},
		{2, 2, 7},
		{3, 3, 8},
	}
	for _, s := range shapes {
		db := randomClassifierDB(t, s.seed, s.attrs, s.card, 200)
		r := explore(t, db, 0)
		m := TruePositiveShare
		var lhs float64
		for _, v := range r.GlobalDivergence(m) {
			lhs += v
		}
		var rhs float64
		count := 0
		for _, p := range r.Patterns {
			if len(p.Items) == s.attrs {
				rhs += r.DivergenceOfTally(p.Tally, m)
				count++
			}
		}
		want := 1
		for i := 0; i < s.attrs; i++ {
			want *= s.card
		}
		if count != want {
			t.Fatalf("shape %v: %d complete itemsets, want %d", s, count, want)
		}
		rhs /= float64(count)
		if !almost(lhs, rhs, 1e-9) {
			t.Errorf("shape %v: Σ Δ^g = %v, mean Δ(I_A) = %v", s, lhs, rhs)
		}
	}
}

// Null-item axiom: an attribute whose items never change divergence gets
// global divergence 0, and dropping it leaves other items' global
// divergence unchanged.
func TestGlobalDivergenceNullItem(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var base []rowSpec
	for i := 0; i < 40; i++ {
		g := rng.Intn(2)
		truth := rng.Intn(2) == 0
		pred := rng.Intn(2) == 0
		if g == 1 && rng.Intn(2) == 0 {
			pred = true // plant some dependence on g
		}
		base = append(base, rowSpec{[]string{itoa(g)}, truth, pred})
	}
	// Dataset WITH null attribute z: every base row duplicated over z=0,1.
	var withZ []rowSpec
	for _, r := range base {
		for _, z := range []string{"0", "1"} {
			withZ = append(withZ, rowSpec{[]string{r.values[0], z}, r.truth, r.pred})
		}
	}
	dbZ := buildClassifierDB(t, []string{"g", "z"}, withZ)
	rZ := explore(t, dbZ, 0)
	m := TruePositiveShare
	globalZ := rZ.GlobalDivergence(m)
	for it, v := range globalZ {
		name := dbZ.Catalog.Name(it)
		if (name == "z=0" || name == "z=1") && !almost(v, 0, 1e-9) {
			t.Errorf("null item %s has Δ^g = %v, want 0", name, v)
		}
	}
	// Dataset WITHOUT z: same global divergence for g's items.
	dbG := buildClassifierDB(t, []string{"g"}, base)
	rG := explore(t, dbG, 0)
	globalG := rG.GlobalDivergence(m)
	for it, v := range globalG {
		name := dbG.Catalog.Name(it)
		itZ, err := dbZ.Catalog.ItemByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(v, globalZ[itZ], 1e-9) {
			t.Errorf("removing null attribute changed Δ^g(%s): %v vs %v",
				name, v, globalZ[itZ])
		}
	}
}

// Symmetry axiom: two items with identical effect on every context have
// equal global divergence. Attributes x and y are exact copies, so
// x=c and y=c behave identically.
func TestGlobalDivergenceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var rows []rowSpec
	for i := 0; i < 60; i++ {
		v := itoa(rng.Intn(2))
		w := itoa(rng.Intn(3))
		rows = append(rows, rowSpec{[]string{v, v, w}, rng.Intn(2) == 0, rng.Intn(2) == 0})
	}
	db := buildClassifierDB(t, []string{"x", "y", "w"}, rows)
	r := explore(t, db, 0)
	global := r.GlobalDivergence(TruePositiveShare)
	for _, c := range []string{"0", "1"} {
		ix, err := db.Catalog.ItemByName("x=" + c)
		if err != nil {
			t.Fatal(err)
		}
		iy, err := db.Catalog.ItemByName("y=" + c)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(global[ix], global[iy], 1e-9) {
			t.Errorf("symmetry: Δ^g(x=%s)=%v vs Δ^g(y=%s)=%v", c, global[ix], c, global[iy])
		}
	}
}

// Linearity axiom: Δ^g computed from γ1·Δ1 + γ2·Δ2 equals
// γ1·Δ1^g + γ2·Δ2^g. Uses the function-level entry point with two
// arbitrary divergence assignments.
func TestGlobalDivergenceLinearity(t *testing.T) {
	db := randomClassifierDB(t, 44, 3, 2, 60)
	r := explore(t, db, 0)
	d1 := func(tl fpm.Tally) float64 { return r.DivergenceOfTally(tl, TruePositiveShare) }
	d2 := func(tl fpm.Tally) float64 { return r.DivergenceOfTally(tl, PredictedPositiveRate) }
	g1, g2 := 0.7, -1.3
	combined := r.globalFromDivergence(func(tl fpm.Tally) float64 {
		return g1*d1(tl) + g2*d2(tl)
	})
	s1 := r.globalFromDivergence(d1)
	s2 := r.globalFromDivergence(d2)
	for it, v := range combined {
		want := g1*s1[it] + g2*s2[it]
		if !almost(v, want, 1e-9) {
			t.Errorf("linearity at %s: %v vs %v", db.Catalog.Name(it), v, want)
		}
	}
}

// Theorem 4.2: individual and global divergence do not coincide. Build
// the miniature version of the paper's artificial dataset: attributes a,b
// cause divergence only jointly; individual divergences vanish while the
// global ones do not.
func TestTheorem42IndividualGlobalDiffer(t *testing.T) {
	var rows []rowSpec
	// Balanced a,b in {0,1}; FP iff a=b=1; per cell 10 rows.
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for i := 0; i < 10; i++ {
				fp := a == 1 && b == 1 && i < 8
				rows = append(rows, rowSpec{[]string{itoa(a), itoa(b)}, false, fp})
			}
		}
	}
	db := buildClassifierDB(t, []string{"a", "b"}, rows)
	r := explore(t, db, 0.01)
	ind := r.IndividualDivergence(FPR)
	global := r.GlobalDivergence(FPR)
	a1, err := db.Catalog.ItemByName("a=1")
	if err != nil {
		t.Fatal(err)
	}
	// a=1 individually has divergence (8/20 - 8/40) = 0.2 ... so pick the
	// comparison the theorem needs: individual and global must differ.
	if almost(ind[a1], global[a1], 1e-9) {
		t.Errorf("individual (%v) and global (%v) coincide for a=1", ind[a1], global[a1])
	}
	// And the joint itemset must be the top divergent pattern.
	top := r.TopK(FPR, 1, ByDivergence)
	want := mustItemset(t, db, "a=1", "b=1")
	if !top[0].Items.Equal(want) {
		t.Errorf("top divergent = %s, want a=1,b=1", db.Catalog.Format(top[0].Items))
	}
}

// GlobalDivergenceOf on single items agrees with the batch computation.
func TestGlobalDivergenceOfMatchesBatch(t *testing.T) {
	db := randomClassifierDB(t, 55, 3, 2, 70)
	r := explore(t, db, 0.02)
	global := r.GlobalDivergence(ErrorRate)
	for _, it := range r.FrequentItems() {
		got, err := r.GlobalDivergenceOf(fpm.Itemset{it}, ErrorRate)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, global[it], 1e-9) {
			t.Errorf("GlobalDivergenceOf(%s) = %v, batch = %v",
				db.Catalog.Name(it), got, global[it])
		}
	}
}

func TestGlobalDivergenceOfErrors(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	if _, err := r.GlobalDivergenceOf(nil, FPR); err == nil {
		t.Error("empty itemset accepted")
	}
	if _, err := r.GlobalDivergenceOf(fpm.Itemset{999}, FPR); err == nil {
		t.Error("unknown itemset accepted")
	}
}

func TestCompareItemDivergenceSorted(t *testing.T) {
	db := randomClassifierDB(t, 66, 3, 2, 60)
	r := explore(t, db, 0.02)
	cmp := r.CompareItemDivergence(ErrorRate)
	if len(cmp) == 0 {
		t.Fatal("empty comparison")
	}
	for i := 1; i < len(cmp); i++ {
		gi, gp := cmp[i].Global, cmp[i-1].Global
		if math.IsNaN(gi) || math.IsNaN(gp) {
			continue
		}
		if gi > gp+1e-12 {
			t.Errorf("comparison not sorted at %d: %v after %v", i, gi, gp)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	return "1"
}
