package core

import (
	"testing"

	"repro/internal/fpm"
)

func TestConfusionClasses(t *testing.T) {
	truth := []bool{true, false, true, false}
	pred := []bool{true, true, false, false}
	classes, err := ConfusionClasses(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{ClassTP, ClassFP, ClassFN, ClassTN}
	for i, w := range want {
		if classes[i] != w {
			t.Errorf("row %d class = %d, want %d", i, classes[i], w)
		}
	}
	if _, err := ConfusionClasses(truth, pred[:2]); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestMetricCounts(t *testing.T) {
	var tally fpm.Tally
	tally[ClassTP] = 10
	tally[ClassFP] = 3
	tally[ClassFN] = 7
	tally[ClassTN] = 30

	cases := []struct {
		m            Metric
		wantP, wantN int64
	}{
		{FPR, 3, 30},
		{FNR, 7, 10},
		{ErrorRate, 10, 40},
		{Accuracy, 40, 10},
		{PPV, 10, 3},
		{TPR, 10, 7},
		{TNR, 30, 3},
		{FDR, 3, 10},
		{FOR, 7, 30},
		{PredictedPositiveRate, 13, 37},
		{TruePositiveShare, 17, 33},
	}
	for _, c := range cases {
		kp, kn := c.m.Counts(tally)
		if kp != c.wantP || kn != c.wantN {
			t.Errorf("%s.Counts = (%d,%d), want (%d,%d)", c.m.Name, kp, kn, c.wantP, c.wantN)
		}
	}
}

func TestMetricValidation(t *testing.T) {
	for _, m := range ConfusionMetrics() {
		if err := m.Validate(); err != nil {
			t.Errorf("built-in metric %s invalid: %v", m.Name, err)
		}
	}
	if err := OutcomeRate.Validate(); err != nil {
		t.Errorf("OutcomeRate invalid: %v", err)
	}
	bad := []Metric{
		{"empty-pos", 0, 1},
		{"empty-neg", 1, 0},
		{"overlap", 3, 1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("metric %s validated, want error", m.Name)
		}
	}
}

func TestMetricByName(t *testing.T) {
	m, err := MetricByName("FNR")
	if err != nil || m.Name != "FNR" {
		t.Errorf("MetricByName(FNR) = %v, %v", m, err)
	}
	if _, err := MetricByName("rate"); err != nil {
		t.Errorf("MetricByName(rate) failed: %v", err)
	}
	if _, err := MetricByName("bogus"); err == nil {
		t.Error("MetricByName(bogus) succeeded")
	}
}

// Complementary metrics mirror each other: ER + ACC rates sum to 1 on any
// tally with at least one instance, and FPR(t) = 1 - TNR(t).
func TestMetricComplements(t *testing.T) {
	db := randomClassifierDB(t, 7, 3, 2, 50)
	r := explore(t, db, 0.05)
	for _, p := range r.Patterns {
		er := r.Rate(p.Tally, ErrorRate)
		acc := r.Rate(p.Tally, Accuracy)
		if !almost(er+acc, 1, 1e-12) {
			t.Fatalf("ER+ACC = %v on %v", er+acc, p.Items)
		}
		fpr := r.Rate(p.Tally, FPR)
		tnr := r.Rate(p.Tally, TNR)
		if !isNaN(fpr) && !almost(fpr+tnr, 1, 1e-12) {
			t.Fatalf("FPR+TNR = %v on %v", fpr+tnr, p.Items)
		}
	}
}

func almost(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func isNaN(x float64) bool { return x != x }
