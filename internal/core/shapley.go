package core

import (
	"fmt"
	"sort"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// Contribution is the attribution of divergence to one item.
type Contribution struct {
	Item  fpm.Item
	Value float64
}

// LocalShapley computes the contribution Δ(α|I) of every item α of a
// frequent itemset I to its divergence, via the Shapley value over the
// sub-itemset lattice (Def. 4.1, Eq. 5). Because every subset of a
// frequent itemset is frequent, all 2^|I| terms are served from the mined
// index. The contributions sum to Δ(I) (Shapley efficiency).
func (r *Result) LocalShapley(is fpm.Itemset, m Metric) ([]Contribution, error) {
	if len(is) == 0 {
		return nil, fmt.Errorf("core: Shapley of the empty itemset")
	}
	if _, ok := r.Lookup(is); !ok {
		return nil, fmt.Errorf("core: itemset %s not frequent at support %v",
			r.DB.Catalog.Format(is), r.MinSup)
	}
	n := len(is)
	if n > 24 {
		return nil, fmt.Errorf("core: itemset too long for exact Shapley (%d items)", n)
	}

	// Divergence of every subset, indexed by bitmask over positions in is.
	div := make([]float64, 1<<n)
	buf := make(fpm.Itemset, 0, n)
	for mask := 1; mask < 1<<n; mask++ {
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, is[i])
			}
		}
		p, ok := r.Lookup(buf)
		if !ok {
			// Impossible for subsets of a frequent itemset (anti-monotone
			// support); indicates an inconsistent Result.
			return nil, fmt.Errorf("core: subset %s of frequent itemset missing from index",
				r.DB.Catalog.Format(buf))
		}
		div[mask] = r.DivergenceOfTally(p.Tally, m)
	}

	out := make([]Contribution, n)
	full := (1 << n) - 1
	for i := 0; i < n; i++ {
		bit := 1 << i
		var sum float64
		// Iterate over subsets J of I \ {α_i} by walking masks without bit.
		rest := full &^ bit
		for sub := rest; ; sub = (sub - 1) & rest {
			j := popcount(sub)
			w := stats.ShapleyWeight(j, n)
			sum += w * (div[sub|bit] - div[sub])
			if sub == 0 {
				break
			}
		}
		out[i] = Contribution{Item: is[i], Value: sum}
	}
	return out, nil
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SortContributions orders contributions by decreasing value (stable on
// item id for determinism). It sorts in place and returns its argument.
func SortContributions(cs []Contribution) []Contribution {
	sort.Slice(cs, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if cs[i].Value != cs[j].Value {
			return cs[i].Value > cs[j].Value
		}
		return cs[i].Item < cs[j].Item
	})
	return cs
}
