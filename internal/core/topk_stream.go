package core

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// ExploreTopK streams the mining pass and keeps only the k most
// divergent patterns for one metric, in O(k) memory instead of
// O(#frequent itemsets). The answer is exact — every frequent pattern is
// still visited (completeness cannot be traded away, Sec. 5) — but the
// full result map is never materialized, so lattice-wide analyses
// (Shapley, global divergence, corrective items) are unavailable on the
// output. Use it when only the leaderboard is needed on workloads like
// german at s = 0.01, where the full result holds millions of patterns.
func ExploreTopK(db *fpm.TxDB, minSup float64, m Metric, k int, order RankOrder) ([]Ranked, error) {
	if minSup < 0 || minSup > 1 {
		return nil, fmt.Errorf("core: support threshold %v out of [0,1]", minSup)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k %d < 1", k)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	minCount := fpm.MinCount(db.NumRows(), minSup)
	total := db.TotalTally()
	rows := float64(db.NumRows())
	globalRate := rateOf(total, m)
	if math.IsNaN(globalRate) {
		return nil, fmt.Errorf("core: metric %s undefined on the whole dataset", m.Name)
	}
	globalPost := posteriorOf(total, m)

	key := func(div float64) float64 {
		switch order {
		case ByAbsDivergence:
			return math.Abs(div)
		case ByNegDivergence:
			return -div
		default:
			return div
		}
	}

	h := &rankedHeap{key: key}
	err := fpm.FPGrowth{}.MineVisit(db, minCount, func(p fpm.FrequentPattern) error {
		rate := rateOf(p.Tally, m)
		if math.IsNaN(rate) {
			return nil
		}
		div := rate - globalRate
		if h.Len() == k && key(div) <= key(h.items[0].Divergence) {
			return nil
		}
		rk := Ranked{
			Items:      p.Items.Clone(),
			Tally:      p.Tally,
			Support:    float64(p.Tally.Total()) / rows,
			Rate:       rate,
			Divergence: div,
		}
		if h.Len() == k {
			h.items[0] = rk
			heap.Fix(h, 0)
		} else {
			heap.Push(h, rk)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Drain the heap into descending order and fill in significance.
	out := make([]Ranked, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Ranked)
	}
	for i := range out {
		out[i].T = welchOf(out[i].Tally, m, globalPost)
	}
	return out, nil
}

func rateOf(t fpm.Tally, m Metric) float64 {
	kp, kn := m.Counts(t)
	if kp+kn == 0 {
		return math.NaN()
	}
	return float64(kp) / float64(kp+kn)
}

func posteriorOf(t fpm.Tally, m Metric) stats.PosteriorRate {
	kp, kn := m.Counts(t)
	return stats.NewPosteriorRate(float64(kp), float64(kn))
}

func welchOf(t fpm.Tally, m Metric, global stats.PosteriorRate) float64 {
	return stats.WelchTPosterior(posteriorOf(t, m), global)
}

// rankedHeap is a min-heap on the ranking key, so the weakest of the
// kept k patterns sits at the root.
type rankedHeap struct {
	items []Ranked
	key   func(float64) float64
}

func (h *rankedHeap) Len() int { return len(h.items) }
func (h *rankedHeap) Less(i, j int) bool {
	ki, kj := h.key(h.items[i].Divergence), h.key(h.items[j].Divergence)
	// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
	if ki != kj {
		return ki < kj
	}
	return h.items[i].Support < h.items[j].Support
}
func (h *rankedHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *rankedHeap) Push(x interface{}) {
	h.items = append(h.items, x.(Ranked))
}
func (h *rankedHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
