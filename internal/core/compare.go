package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// Cross-exploration comparison: the same divergence machinery applied to
// two datasets over one schema — e.g. a validation set versus production
// traffic, or two model versions on the same data. For every pattern
// frequent in both explorations, the metric's rate shift between the two
// is measured with full Bayesian significance. This operationalizes the
// paper's closing remark that the divergence notion extends to other
// data-science tasks (here: drift detection and model comparison).

// PatternShift records how one pattern's metric rate moved between two
// explorations.
type PatternShift struct {
	Items fpm.Itemset
	// RateA and RateB are the raw metric rates in the two explorations.
	RateA, RateB float64
	// Shift is RateB − RateA.
	Shift float64
	// NetShift subtracts the overall movement f_B(D) − f_A(D): a pattern
	// with large NetShift moved more than the dataset did.
	NetShift float64
	// T is the Welch statistic between the two pattern posteriors.
	T float64
	// SupportA and SupportB are the pattern supports in each exploration.
	SupportA, SupportB float64
}

// Compare matches the frequent patterns of two explorations over the
// same schema and returns the shifts, largest |NetShift| first. Patterns
// frequent in only one exploration, or with an undefined rate in either,
// are skipped (they have no comparable evidence).
func Compare(a, b *Result, m Metric) ([]PatternShift, error) {
	if err := sameSchema(a, b); err != nil {
		return nil, err
	}
	globalShift := b.safeRate(b.total, m) - a.safeRate(a.total, m)
	var out []PatternShift
	for _, pa := range a.Patterns {
		pb, ok := b.Lookup(pa.Items)
		if !ok {
			continue
		}
		rateA := a.Rate(pa.Tally, m)
		rateB := b.Rate(pb.Tally, m)
		if math.IsNaN(rateA) || math.IsNaN(rateB) {
			continue
		}
		shift := rateB - rateA
		out = append(out, PatternShift{
			Items:    pa.Items,
			RateA:    rateA,
			RateB:    rateB,
			Shift:    shift,
			NetShift: shift - globalShift,
			T:        stats.WelchTPosterior(a.PosteriorRate(pa.Tally, m), b.PosteriorRate(pb.Tally, m)),
			SupportA: a.Support(pa.Tally),
			SupportB: b.Support(pb.Tally),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := math.Abs(out[i].NetShift), math.Abs(out[j].NetShift)
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if ni != nj {
			return ni > nj
		}
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if out[i].T != out[j].T {
			return out[i].T > out[j].T
		}
		return lessItemsets(out[i].Items, out[j].Items)
	})
	return out, nil
}

// sameSchema verifies the two explorations share an item space.
func sameSchema(a, b *Result) error {
	ca, cb := a.DB.Catalog, b.DB.Catalog
	if ca.NumAttrs() != cb.NumAttrs() || ca.NumItems() != cb.NumItems() {
		return fmt.Errorf("core: explorations have different schemas (%d/%d attrs, %d/%d items)",
			ca.NumAttrs(), cb.NumAttrs(), ca.NumItems(), cb.NumItems())
	}
	for i := 0; i < ca.NumItems(); i++ {
		if ca.Name(fpm.Item(i)) != cb.Name(fpm.Item(i)) {
			return fmt.Errorf("core: item %d differs between schemas: %q vs %q",
				i, ca.Name(fpm.Item(i)), cb.Name(fpm.Item(i)))
		}
	}
	return nil
}
