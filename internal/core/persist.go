package core

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/fpm"
)

// Exploration persistence: a mined Result can be saved and later
// reattached to the same transaction database, skipping the mining pass.
// Useful for interactive workflows over large explorations (german at
// s = 0.01 mines for tens of seconds but loads in a fraction of that)
// and for sharing exploration snapshots between the CLI, the server and
// notebooks.
//
// The snapshot embeds a fingerprint of the database (row count, item
// space, outcome classes); Load refuses to attach a snapshot to a
// different database, which would silently corrupt every statistic.

type resultSnapshot struct {
	Fingerprint uint64
	MinSup      float64
	MinCount    int64
	Miner       string
	Items       [][]fpm.Item
	Tallies     []fpm.Tally
}

// Save writes the exploration to w in gob encoding.
func (r *Result) Save(w io.Writer) error {
	snap := resultSnapshot{
		Fingerprint: fingerprintDB(r.DB),
		MinSup:      r.MinSup,
		MinCount:    r.MinCount,
		Miner:       r.Miner,
		Items:       make([][]fpm.Item, len(r.Patterns)),
		Tallies:     make([]fpm.Tally, len(r.Patterns)),
	}
	for i, p := range r.Patterns {
		snap.Items[i] = p.Items
		snap.Tallies[i] = p.Tally
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	return nil
}

// LoadResult reads a snapshot and attaches it to db, which must be the
// database the snapshot was mined from.
func LoadResult(rd io.Reader, db *fpm.TxDB) (*Result, error) {
	var snap resultSnapshot
	if err := gob.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	if got := fingerprintDB(db); got != snap.Fingerprint {
		return nil, fmt.Errorf("core: snapshot fingerprint %x does not match database %x",
			snap.Fingerprint, got)
	}
	if len(snap.Items) != len(snap.Tallies) {
		return nil, fmt.Errorf("core: corrupt snapshot (%d itemsets, %d tallies)",
			len(snap.Items), len(snap.Tallies))
	}
	r := &Result{
		DB:       db,
		MinSup:   snap.MinSup,
		MinCount: snap.MinCount,
		Miner:    snap.Miner,
		Patterns: make([]Pattern, len(snap.Items)),
		index:    make(map[string]int, len(snap.Items)),
		total:    db.TotalTally(),
	}
	for i := range snap.Items {
		items := fpm.Itemset(snap.Items[i])
		r.Patterns[i] = Pattern{Items: items, Tally: snap.Tallies[i]}
		r.index[items.Key()] = i
	}
	return r, nil
}

// fingerprintDB hashes the database's schema and outcome assignment.
func fingerprintDB(db *fpm.TxDB) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|", db.NumRows(), db.K, db.Catalog.NumItems())
	for i := 0; i < db.Catalog.NumItems(); i++ {
		io.WriteString(h, db.Catalog.Name(fpm.Item(i)))
		h.Write([]byte{0})
	}
	h.Write(db.Classes)
	// Row content: hash the value codes.
	for _, row := range db.Data.Rows {
		for _, v := range row {
			h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
		}
	}
	return h.Sum64()
}
