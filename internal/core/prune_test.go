package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fpm"
)

func TestPruneDropsRedundantPattern(t *testing.T) {
	// z is a null attribute (rows duplicated over z=0/z=1), so any pattern
	// containing a z item adds no divergence and must be pruned at any
	// eps >= 0.
	base := []rowSpec{
		{[]string{"1"}, false, true},
		{[]string{"1"}, false, true},
		{[]string{"1"}, false, false},
		{[]string{"0"}, false, true},
		{[]string{"0"}, false, false},
		{[]string{"0"}, false, false},
		{[]string{"0"}, false, false},
	}
	var rows []rowSpec
	for _, r := range base {
		for _, z := range []string{"0", "1"} {
			rows = append(rows, rowSpec{[]string{r.values[0], z}, r.truth, r.pred})
		}
	}
	db := buildClassifierDB(t, []string{"g", "z"}, rows)
	r := explore(t, db, 0.01)
	survivors := r.Prune(FPR, 0.001)
	for _, p := range survivors {
		for _, it := range p.Items {
			a := db.Catalog.Attr(it)
			if db.Catalog.AttrName(a) == "z" {
				t.Errorf("pattern %s with null item survived pruning",
					db.Catalog.Format(p.Items))
			}
		}
	}
	// g=1 is genuinely divergent and must survive a small eps.
	found := false
	g1 := mustItemset(t, db, "g=1")
	for _, p := range survivors {
		if p.Items.Equal(g1) {
			found = true
		}
	}
	if !found {
		t.Error("divergent singleton g=1 was pruned")
	}
}

func TestPruneEpsilonMonotone(t *testing.T) {
	db := randomClassifierDB(t, 13, 3, 2, 120)
	r := explore(t, db, 0.02)
	prev := math.MaxInt64
	for _, eps := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.5} {
		n := r.PrunedCount(ErrorRate, eps)
		if n > prev {
			t.Errorf("eps=%v: %d survivors > previous %d (non-monotone)", eps, n, prev)
		}
		prev = n
	}
	// eps large enough kills everything.
	if n := r.PrunedCount(ErrorRate, 2); n != 0 {
		t.Errorf("eps=2 left %d survivors, want 0", n)
	}
}

// Pruned survivors are exactly the patterns where every item contributes
// more than eps (the Sec. 3.5 rule), verified from first principles.
func TestPruneRuleProperty(t *testing.T) {
	f := func(seed uint32, epsRaw uint8) bool {
		db := randomClassifierDB(t, int64(seed), 3, 2, 60)
		r := explore(t, db, 0.05)
		eps := float64(epsRaw%20) / 100
		surviving := map[string]bool{}
		for _, p := range r.Prune(ErrorRate, eps) {
			surviving[p.Items.Key()] = true
		}
		for _, p := range r.Patterns {
			if math.IsNaN(r.Rate(p.Tally, ErrorRate)) {
				if surviving[p.Items.Key()] {
					return false
				}
				continue
			}
			div := r.DivergenceOfTally(p.Tally, ErrorRate)
			shouldPrune := false
			for _, alpha := range p.Items {
				parent := p.Items.Without(alpha)
				var pd float64
				if len(parent) > 0 {
					pp, ok := r.Lookup(parent)
					if !ok {
						continue
					}
					pd = r.DivergenceOfTally(pp.Tally, ErrorRate)
				}
				if math.Abs(div-pd) <= eps {
					shouldPrune = true
					break
				}
			}
			if shouldPrune == surviving[p.Items.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTopKPruned(t *testing.T) {
	r := correctiveFixture(t)
	top := r.TopKPruned(FPR, 0.02, 3, ByDivergence)
	if len(top) == 0 {
		t.Fatal("no pruned top-k")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Divergence > top[i-1].Divergence {
			t.Error("pruned top-k not sorted")
		}
	}
	// With a huge eps nothing survives.
	if got := r.TopKPruned(FPR, 5, 3, ByDivergence); len(got) != 0 {
		t.Errorf("eps=5 returned %d patterns", len(got))
	}
}

func TestMarginalContribution(t *testing.T) {
	r := correctiveFixture(t)
	db := r.DB
	is := mustItemset(t, db, "g=1", "p=zero")
	alpha, err := db.Catalog.ItemByName("p=zero")
	if err != nil {
		t.Fatal(err)
	}
	mc, ok := r.MarginalContribution(is, alpha, FPR)
	if !ok {
		t.Fatal("marginal contribution unavailable")
	}
	divExt, _ := r.Divergence(is, FPR)
	divBase, _ := r.Divergence(mustItemset(t, db, "g=1"), FPR)
	if !almost(mc, divExt-divBase, 1e-12) {
		t.Errorf("marginal = %v, want %v", mc, divExt-divBase)
	}
	// Item not in the set.
	other, err := db.Catalog.ItemByName("p=many")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.MarginalContribution(is, other, FPR); ok {
		t.Error("marginal for absent item reported")
	}
}

// Property 3.1: refining an itemset by splitting on a new attribute never
// hides divergence — some child has |Δ| at least that of the parent.
// Verified over every frequent pattern and every absent attribute whose
// children are all frequent (guaranteed here by minSup = 0).
func TestProperty31RefinementNeverHidesDivergence(t *testing.T) {
	db := randomClassifierDB(t, 101, 3, 2, 120)
	r := explore(t, db, 0)
	m := TruePositiveShare // ⊥-free so the weighted-average argument is exact
	cat := db.Catalog
	for _, p := range r.Patterns {
		if len(p.Items) == cat.NumAttrs() {
			continue
		}
		parentDiv := r.DivergenceOfTally(p.Tally, m)
		used := map[int]bool{}
		for _, it := range p.Items {
			used[cat.Attr(it)] = true
		}
		for a := 0; a < cat.NumAttrs(); a++ {
			if used[a] {
				continue
			}
			best := math.Inf(-1)
			childCount := 0
			var childSupport int64
			for v := 0; v < cat.Cardinality(a); v++ {
				child := p.Items.Union(fpm.Itemset{cat.ItemFor(a, int32(v))})
				cp, ok := r.Lookup(child)
				if !ok {
					continue
				}
				childCount++
				childSupport += cp.Tally.Total()
				if d := math.Abs(r.DivergenceOfTally(cp.Tally, m)); d > best {
					best = d
				}
			}
			// Only a complete partition supports the claim.
			if childSupport != p.Tally.Total() {
				continue
			}
			if childCount > 0 && best < math.Abs(parentDiv)-1e-9 {
				t.Fatalf("refinement of %s on attr %s hides divergence: parent %v, best child %v",
					cat.Format(p.Items), cat.AttrName(a), parentDiv, best)
			}
		}
	}
}
