package core

import (
	"math"
	"testing"
)

func TestCredibleIntervalBracketsRate(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	for _, p := range r.Patterns {
		rate := r.Rate(p.Tally, FPR)
		if math.IsNaN(rate) {
			continue
		}
		lo, hi := r.CredibleInterval(p.Tally, FPR, 0.95)
		if !(lo <= hi && lo >= 0 && hi <= 1) {
			t.Fatalf("malformed interval [%v, %v]", lo, hi)
		}
		// The posterior mean always lies inside the equal-tailed interval.
		mean := r.PosteriorRate(p.Tally, FPR).Mean()
		if mean < lo || mean > hi {
			t.Fatalf("posterior mean %v outside [%v, %v]", mean, lo, hi)
		}
	}
}

func TestPValueMatchesTStat(t *testing.T) {
	db := fixtureDB(t)
	r := explore(t, db, 0.05)
	g1, _ := r.Lookup(mustItemset(t, db, "g=1"))
	p := r.PValue(g1.Tally, FPR)
	if p <= 0 || p >= 1 {
		t.Fatalf("p-value %v out of range", p)
	}
	// Larger |t| -> smaller p, on synthetic tallies.
	var weak, strong [8]int64
	weak[ClassFP], weak[ClassTN] = 6, 4
	strong[ClassFP], strong[ClassTN] = 60, 40
	if r.PValue(strong, FPR) >= r.PValue(weak, FPR) {
		t.Error("p-value did not shrink with more evidence")
	}
}

func TestSignificantPatternsFDR(t *testing.T) {
	db := randomClassifierDB(t, 8, 3, 2, 400)
	r := explore(t, db, 0.02)
	sig := r.SignificantPatterns(ErrorRate, 0.05, ByAbsDivergence)
	all := r.RankAll(ErrorRate, ByAbsDivergence)
	if len(sig) > len(all) {
		t.Fatal("more significant patterns than patterns")
	}
	for _, s := range sig {
		if s.P > 0.05 && s.AdjP > 0.05 {
			// BH can reject p-values above q only in rare step-up
			// configurations; adjusted values must still be <= q-ish.
			t.Errorf("rejected pattern with p=%v adj=%v", s.P, s.AdjP)
		}
		if s.AdjP < s.P-1e-15 {
			t.Errorf("adjusted p %v below raw %v", s.AdjP, s.P)
		}
	}
	// A stricter q never yields more rejections.
	strict := r.SignificantPatterns(ErrorRate, 0.001, ByAbsDivergence)
	if len(strict) > len(sig) {
		t.Errorf("q=0.001 rejected %d > q=0.05 rejected %d", len(strict), len(sig))
	}
}

// On the planted fixture, the planted divergent subgroup survives FDR
// while random noise patterns mostly do not.
func TestSignificantPatternsFindPlanted(t *testing.T) {
	r := correctiveFixture(t)
	db := r.DB
	sig := r.SignificantPatterns(FPR, 0.05, ByDivergence)
	if len(sig) == 0 {
		t.Fatal("no significant patterns")
	}
	found := false
	g1hi := mustItemset(t, db, "g=1", "p=many")
	for _, s := range sig {
		if s.Items.Equal(g1hi) {
			found = true
		}
	}
	if !found {
		t.Error("planted subgroup (g=1, p=many) not significant")
	}
}

func TestDescribeCredible(t *testing.T) {
	r := correctiveFixture(t)
	db := r.DB
	is := mustItemset(t, db, "g=1", "p=many")
	dc, err := r.DescribeCredible(is, FPR, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(dc.RateLo < dc.Rate && dc.Rate < dc.RateHi) {
		t.Errorf("interval [%v, %v] does not bracket rate %v", dc.RateLo, dc.RateHi, dc.Rate)
	}
	// Strongly divergent subgroup: posterior sign probability near 1.
	if dc.PosteriorSign < 0.95 {
		t.Errorf("PosteriorSign = %v, want near 1", dc.PosteriorSign)
	}
	// Errors propagate.
	if _, err := r.DescribeCredible(mustItemset(t, db, "g=1").Union(mustItemset(t, db, "g=0")), FPR, 0.95); err == nil {
		t.Error("nonsense itemset accepted")
	}
}

func TestTopKCredible(t *testing.T) {
	r := correctiveFixture(t)
	top := r.TopKCredible(FPR, 4, 0.95)
	if len(top) == 0 {
		t.Fatal("empty credible ranking")
	}
	for i := 1; i < len(top); i++ {
		if top[i].PosteriorSign > top[i-1].PosteriorSign+1e-12 {
			t.Errorf("credible ranking not sorted at %d", i)
		}
	}
	// The top entry must be on the divergent side with high probability.
	if top[0].PosteriorSign < 0.9 {
		t.Errorf("top credible pattern has sign prob %v", top[0].PosteriorSign)
	}
}
