package lattice

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/fpm"
)

// Explorer answers lattice-navigation queries — expand a pattern into
// its one-item refinements, or drill along a single attribute — against
// one transaction database without ever re-mining. The trick (after
// Pastor et al.'s DivExplorer follow-up) is that one scan over a
// pattern's cover rows computes the conditional tallies of EVERY
// candidate extension item at once: for each covered row, each unbound
// attribute contributes exactly one item, so a NumItems-sized tally
// array absorbs the whole row in O(#attrs).
//
// Covers and tally arrays are memoized in an entry-bounded LRU keyed by
// the pattern, and a pattern's cover is derived by narrowing its
// parent's cached cover rather than scanning the full dataset — so a
// drill-down session touches ever-shrinking row sets. The Explorer
// holds no mining state at all; the mine-counter stat in the server
// stays flat while navigation runs (tested).
type Explorer struct {
	db *fpm.TxDB

	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
	rows      int64 // rows scanned building tally arrays
	expands   int64
}

// coverEntry memoizes one pattern's navigation state: the rows it
// covers and, for every item, the tally of pattern ∪ {item}. For items
// of attributes the pattern already binds, the tally is the conditional
// tally of that (attribute, value) within the cover — zero unless the
// value matches the bound one.
type coverEntry struct {
	key     string
	cover   []int32
	tallies []fpm.Tally
}

// Refinement is one child of the expanded pattern in the item lattice.
type Refinement struct {
	// Item is the extension item.
	Item fpm.Item
	// Items is the refined pattern (parent ∪ {Item}), sorted.
	Items fpm.Itemset
	// Tally is the refined pattern's exact outcome tally.
	Tally fpm.Tally
}

// ExplorerStats is a point-in-time snapshot of the navigation counters.
type ExplorerStats struct {
	Entries     int   `json:"entries"`
	Capacity    int   `json:"capacity"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	RowsScanned int64 `json:"rows_scanned"`
	Expands     int64 `json:"expands"`
}

// DefaultExplorerCache is the default LRU capacity in patterns.
const DefaultExplorerCache = 256

// NewExplorer builds a navigator over db. capacity bounds the LRU in
// cached patterns (DefaultExplorerCache when <= 0).
func NewExplorer(db *fpm.TxDB, capacity int) *Explorer {
	if capacity <= 0 {
		capacity = DefaultExplorerCache
	}
	return &Explorer{
		db:      db,
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Expand returns the frequent one-item refinements of pattern — every
// child pattern ∪ {item} over an unbound attribute whose support count
// reaches minCount — in ascending item order. The empty pattern expands
// to the frequent singletons. Cost is one scan over the pattern's cover
// on a cache miss and O(NumItems) on a hit.
func (e *Explorer) Expand(pattern fpm.Itemset, minCount int64) ([]Refinement, error) {
	if minCount < 1 {
		return nil, fmt.Errorf("lattice: minCount %d < 1", minCount)
	}
	ent, err := e.entry(pattern)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.expands++
	e.mu.Unlock()
	c := e.db.Catalog
	bound := make([]bool, c.NumAttrs())
	for _, it := range pattern {
		bound[c.Attr(it)] = true
	}
	var out []Refinement
	for it := fpm.Item(0); int(it) < c.NumItems(); it++ {
		if bound[c.Attr(it)] {
			continue
		}
		t := ent.tallies[it]
		if t.Total() < minCount {
			continue
		}
		out = append(out, Refinement{
			Item:  it,
			Items: pattern.Union(fpm.Itemset{it}),
			Tally: t,
		})
	}
	return out, nil
}

// Drill is Expand restricted to one attribute: the frequent refinements
// of pattern along attr's values. The attribute must not already be
// bound by the pattern.
func (e *Explorer) Drill(pattern fpm.Itemset, attr int, minCount int64) ([]Refinement, error) {
	c := e.db.Catalog
	if attr < 0 || attr >= c.NumAttrs() {
		return nil, fmt.Errorf("lattice: attribute index %d out of range", attr)
	}
	for _, it := range pattern {
		if c.Attr(it) == attr {
			return nil, fmt.Errorf("lattice: attribute %q already bound by the pattern", c.AttrName(attr))
		}
	}
	all, err := e.Expand(pattern, minCount)
	if err != nil {
		return nil, err
	}
	out := all[:0:0]
	for _, r := range all {
		if c.Attr(r.Item) == attr {
			out = append(out, r)
		}
	}
	return out, nil
}

// Tally returns the exact tally of a pattern, served from the
// navigation cache (the pattern's parent entry holds it) or one
// narrowed scan.
func (e *Explorer) Tally(pattern fpm.Itemset) (fpm.Tally, error) {
	if len(pattern) == 0 {
		return e.db.TotalTally(), nil
	}
	parent := pattern[:len(pattern)-1]
	ent, err := e.entry(parent)
	if err != nil {
		return fpm.Tally{}, err
	}
	return ent.tallies[pattern[len(pattern)-1]], nil
}

// Stats snapshots the counters.
func (e *Explorer) Stats() ExplorerStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return ExplorerStats{
		Entries:     e.ll.Len(),
		Capacity:    e.cap,
		Hits:        e.hits,
		Misses:      e.misses,
		Evictions:   e.evictions,
		RowsScanned: e.rows,
		Expands:     e.expands,
	}
}

// entry returns the memoized navigation state for a pattern, building
// it on demand by narrowing the parent's cover. Patterns must be sorted
// with pairwise-distinct attributes (the package invariant); items out
// of catalog range are rejected.
func (e *Explorer) entry(pattern fpm.Itemset) (*coverEntry, error) {
	c := e.db.Catalog
	seen := make([]bool, c.NumAttrs())
	for i, it := range pattern {
		if it < 0 || int(it) >= c.NumItems() {
			return nil, fmt.Errorf("lattice: item %d outside the catalog", it)
		}
		if i > 0 && it <= pattern[i-1] {
			return nil, fmt.Errorf("lattice: pattern is not sorted")
		}
		if a := c.Attr(it); seen[a] {
			return nil, fmt.Errorf("lattice: attribute %q bound twice", c.AttrName(a))
		} else {
			seen[a] = true
		}
	}
	return e.build(pattern)
}

// build recursively materializes the entry for a (validated) pattern.
func (e *Explorer) build(pattern fpm.Itemset) (*coverEntry, error) {
	key := pattern.Key()
	e.mu.Lock()
	if el, ok := e.entries[key]; ok {
		e.hits++
		e.ll.MoveToFront(el)
		ent := el.Value.(*coverEntry)
		e.mu.Unlock()
		return ent, nil
	}
	e.misses++
	e.mu.Unlock()

	var cover []int32
	if len(pattern) == 0 {
		cover = make([]int32, e.db.NumRows())
		for r := range cover {
			cover[r] = int32(r)
		}
	} else {
		// Narrow the parent's cover by the last (highest) item instead of
		// scanning the whole dataset.
		parent, err := e.build(pattern[:len(pattern)-1])
		if err != nil {
			return nil, err
		}
		last := pattern[len(pattern)-1]
		a, v := e.db.Catalog.Attr(last), e.db.Catalog.Value(last)
		for _, r := range parent.cover {
			if e.db.Data.Rows[r][a] == v {
				cover = append(cover, r)
			}
		}
	}

	c := e.db.Catalog
	ent := &coverEntry{
		key:     key,
		cover:   cover,
		tallies: make([]fpm.Tally, c.NumItems()),
	}
	// One scan: each covered row contributes one item per attribute, so
	// this fills the conditional tally of every candidate extension at
	// once.
	for _, r := range cover {
		row := e.db.Data.Rows[r]
		cls := e.db.Classes[r]
		for a, v := range row {
			ent.tallies[c.ItemFor(a, v)][cls]++
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.rows += int64(len(cover))
	if el, ok := e.entries[key]; ok {
		// Raced with another builder; keep the incumbent.
		e.ll.MoveToFront(el)
		return el.Value.(*coverEntry), nil
	}
	e.entries[key] = e.ll.PushFront(ent)
	for e.ll.Len() > e.cap {
		back := e.ll.Back()
		e.ll.Remove(back)
		delete(e.entries, back.Value.(*coverEntry).key)
		e.evictions++
	}
	return ent, nil
}
