package lattice

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/fpm"
)

// randomDB builds a seeded random TxDB for oracle checks.
func randomDB(t testing.TB, seed int64, rows, attrs, maxCard int) *fpm.TxDB {
	t.Helper()
	g, err := datagen.Random(seed, datagen.RandomConfig{Rows: rows, Attrs: attrs, MaxCard: maxCard})
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]uint8, len(g.Truth))
	for i := range classes {
		c := uint8(0)
		if g.Truth[i] {
			c |= 2
		}
		if g.Pred[i] {
			c |= 1
		}
		classes[i] = c
	}
	db, err := fpm.NewTxDB(g.Data, classes, 4)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExpandMatchesDirectScan is the oracle check: every refinement's
// tally must equal TallyOf's direct scan, and the refinement set must be
// exactly the frequent extensions over unbound attributes.
func TestExpandMatchesDirectScan(t *testing.T) {
	db := randomDB(t, 17, 250, 5, 4)
	e := NewExplorer(db, 0)
	c := db.Catalog
	const minCount = 5

	var walk func(pattern fpm.Itemset, depth int)
	walk = func(pattern fpm.Itemset, depth int) {
		refs, err := e.Expand(pattern, minCount)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[fpm.Item]fpm.Tally, len(refs))
		for _, r := range refs {
			got[r.Item] = r.Tally
			if want := pattern.Union(fpm.Itemset{r.Item}); !r.Items.Equal(want) {
				t.Fatalf("refinement items %v, want %v", r.Items, want)
			}
		}
		bound := make(map[int]bool)
		for _, it := range pattern {
			bound[c.Attr(it)] = true
		}
		for it := fpm.Item(0); int(it) < c.NumItems(); it++ {
			want := db.TallyOf(pattern.Union(fpm.Itemset{it}))
			ref, ok := got[it]
			switch {
			case bound[c.Attr(it)] || want.Total() < minCount:
				if ok {
					t.Fatalf("expand(%v) wrongly includes item %s (support %d)",
						pattern, c.Name(it), want.Total())
				}
			case !ok:
				t.Fatalf("expand(%v) misses frequent item %s (support %d)",
					pattern, c.Name(it), want.Total())
			case ref != want:
				t.Fatalf("expand(%v) item %s tally %v, direct scan %v",
					pattern, c.Name(it), ref, want)
			}
		}
		if depth < 2 {
			for _, r := range refs[:min(len(refs), 3)] {
				walk(r.Items, depth+1)
			}
		}
	}
	walk(nil, 0)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDrill(t *testing.T) {
	db := randomDB(t, 17, 250, 5, 4)
	e := NewExplorer(db, 0)
	c := db.Catalog
	refs, err := e.Expand(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := refs[0].Items

	drilled, err := e.Drill(base, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(drilled) == 0 {
		t.Fatal("drill along attribute 2 found nothing at minCount 1")
	}
	for _, r := range drilled {
		if c.Attr(r.Item) != 2 {
			t.Fatalf("drill(attr=2) returned item %s of attribute %d", c.Name(r.Item), c.Attr(r.Item))
		}
		if want := db.TallyOf(r.Items); r.Tally != want {
			t.Fatalf("drill tally %v, direct scan %v", r.Tally, want)
		}
	}
	// Drilling a bound attribute is an error.
	if _, err := e.Drill(base, c.Attr(base[0]), 1); err == nil {
		t.Fatal("drill along a bound attribute succeeded")
	}
	if _, err := e.Drill(base, 99, 1); err == nil {
		t.Fatal("drill along an out-of-range attribute succeeded")
	}
}

func TestExplorerTally(t *testing.T) {
	db := randomDB(t, 23, 200, 4, 3)
	e := NewExplorer(db, 0)
	if got, err := e.Tally(nil); err != nil || got != db.TotalTally() {
		t.Fatalf("Tally(∅) = %v, %v", got, err)
	}
	refs, err := e.Expand(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs[:min(len(refs), 4)] {
		got, err := e.Tally(r.Items)
		if err != nil {
			t.Fatal(err)
		}
		if want := db.TallyOf(r.Items); got != want {
			t.Fatalf("Tally(%v) = %v, want %v", r.Items, got, want)
		}
	}
}

func TestExplorerValidation(t *testing.T) {
	db := randomDB(t, 23, 100, 3, 3)
	e := NewExplorer(db, 0)
	if _, err := e.Expand(nil, 0); err == nil {
		t.Error("minCount 0 accepted")
	}
	if _, err := e.Expand(fpm.Itemset{fpm.Item(9999)}, 1); err == nil {
		t.Error("out-of-catalog item accepted")
	}
	if _, err := e.Expand(fpm.Itemset{3, 1}, 1); err == nil {
		t.Error("unsorted pattern accepted")
	}
	// Two values of attribute 0.
	twice := fpm.Itemset{db.Catalog.ItemFor(0, 0), db.Catalog.ItemFor(0, 1)}
	if _, err := e.Expand(twice, 1); err == nil {
		t.Error("doubly-bound attribute accepted")
	}
}

// TestExplorerCache: repeated expands hit the LRU; tiny capacities evict
// but never corrupt; the row-scan counter proves narrowed (not full)
// scans.
func TestExplorerCache(t *testing.T) {
	db := randomDB(t, 31, 300, 4, 3)
	e := NewExplorer(db, 8)

	refs, err := e.Expand(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	s0 := e.Stats()
	if s0.Misses != 1 || s0.Entries != 1 || s0.RowsScanned != 300 {
		t.Fatalf("after first expand: %+v", s0)
	}
	if _, err := e.Expand(nil, 3); err != nil {
		t.Fatal(err)
	}
	s1 := e.Stats()
	if s1.Hits != s0.Hits+1 || s1.RowsScanned != s0.RowsScanned {
		t.Fatalf("second expand did not hit the cache: %+v", s1)
	}

	// Expanding a child narrows the parent's cover: the extra rows
	// scanned are the child's cover, not the whole dataset.
	child := refs[0]
	if _, err := e.Expand(child.Items, 3); err != nil {
		t.Fatal(err)
	}
	s2 := e.Stats()
	scanned := s2.RowsScanned - s1.RowsScanned
	if scanned != child.Tally.Total() {
		t.Fatalf("child expand scanned %d rows, want its cover %d", scanned, child.Tally.Total())
	}

	// Churn far past capacity; every answer must stay oracle-exact.
	for _, r := range refs {
		got, err := e.Expand(r.Items, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range got {
			if want := db.TallyOf(g.Items); g.Tally != want {
				t.Fatalf("post-eviction tally %v, want %v", g.Tally, want)
			}
		}
	}
	s3 := e.Stats()
	if s3.Entries > 8 {
		t.Fatalf("cache holds %d entries, capacity 8", s3.Entries)
	}
}

func BenchmarkLatticeExpand(b *testing.B) {
	g, err := datagen.Random(7, datagen.RandomConfig{Rows: 20000, Attrs: 12, MaxCard: 4})
	if err != nil {
		b.Fatal(err)
	}
	classes := make([]uint8, len(g.Truth))
	for i := range classes {
		if g.Pred[i] {
			classes[i] = 1
		}
	}
	db, err := fpm.NewTxDB(g.Data, classes, 2)
	if err != nil {
		b.Fatal(err)
	}
	e := NewExplorer(db, 0)
	refs, err := e.Expand(nil, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := NewExplorer(db, 0)
			if _, err := cold.Expand(refs[i%len(refs)].Items, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Expand(refs[i%len(refs)].Items, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}
