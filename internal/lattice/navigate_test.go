package lattice

import (
	"math"
	"testing"

	"repro/internal/core"
)

func buildLattice(t testing.TB) (*Lattice, *core.Result) {
	t.Helper()
	r, db := buildResult(t)
	l, err := Build(r, target(t, db), core.FPR, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l, r
}

func TestNodeLookup(t *testing.T) {
	l, r := buildLattice(t)
	db := r.DB
	is, err := db.Catalog.ItemsetByNames("g=1", "p=hi")
	if err != nil {
		t.Fatal(err)
	}
	node, ok := l.Node(is)
	if !ok {
		t.Fatal("node not found")
	}
	if !node.Items.Equal(is.Sorted()) {
		t.Errorf("node items = %v, want %v", node.Items, is)
	}
	// Empty itemset -> root.
	root, ok := l.Node(nil)
	if !ok || len(root.Items) != 0 {
		t.Error("root lookup failed")
	}
	// Item outside the target.
	out, err := db.Catalog.ItemsetByNames("q=w")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Node(out); ok {
		t.Error("foreign item resolved to a node")
	}
}

func TestSteepestPath(t *testing.T) {
	l, _ := buildLattice(t)
	path := l.SteepestPath()
	if len(path) != len(l.Target)+1 {
		t.Fatalf("path length = %d, want %d", len(path), len(l.Target)+1)
	}
	if path[0] != 0 {
		t.Error("path does not start at root")
	}
	if path[len(path)-1] != len(l.Nodes)-1 {
		t.Error("path does not end at the target")
	}
	// Each step adds exactly one item.
	for i := 1; i < len(path); i++ {
		diff := path[i] &^ path[i-1]
		if path[i-1]&^path[i] != 0 || diff == 0 || diff&(diff-1) != 0 {
			t.Errorf("step %d is not a single-item extension", i)
		}
	}
	// Greedy optimality of the first step: no single item has larger |Δ|.
	first := math.Abs(l.Nodes[path[1]].Divergence)
	for i := 0; i < len(l.Target); i++ {
		if v := math.Abs(l.Nodes[1<<i].Divergence); v > first+1e-12 {
			t.Errorf("first step |Δ|=%v not maximal (item %d has %v)", first, i, v)
		}
	}
}

func TestCorrectiveEdges(t *testing.T) {
	l, _ := buildLattice(t)
	edges := l.CorrectiveEdges()
	if len(edges) == 0 {
		t.Fatal("no corrective edges in a fixture with a planted correction")
	}
	for i, e := range edges {
		if e.Factor <= 0 {
			t.Errorf("edge %d has non-positive factor", i)
		}
		parent := l.Nodes[e.ParentMask]
		child := l.Nodes[e.ChildMask]
		if got := math.Abs(parent.Divergence) - math.Abs(child.Divergence); !almostEq(got, e.Factor) {
			t.Errorf("edge %d factor mismatch: %v vs %v", i, got, e.Factor)
		}
		// Item is the difference between the masks.
		bit := e.ChildMask &^ e.ParentMask
		pos := 0
		for bit>>1 != 0 {
			bit >>= 1
			pos++
		}
		if l.Target[pos] != e.Item {
			t.Errorf("edge %d item mismatch", i)
		}
		if i > 0 && edges[i-1].Factor < e.Factor {
			t.Error("edges not sorted by factor")
		}
	}
	// Every corrective-marked node has at least one incoming corrective
	// edge.
	hasEdge := map[int]bool{}
	for _, e := range edges {
		hasEdge[e.ChildMask] = true
	}
	for _, mask := range l.CorrectiveNodes() {
		if !hasEdge[mask] {
			t.Errorf("corrective node %d lacks a corrective edge", mask)
		}
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
