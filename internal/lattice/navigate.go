package lattice

import (
	"math"

	"repro/internal/fpm"
)

// Navigation helpers for the interactive exploration of Sec. 6.4: find a
// node by itemset, walk the steepest-divergence path from the root to
// the target, and enumerate corrective edges.

// Node returns the lattice node for a subset of the target, if present.
func (l *Lattice) Node(items fpm.Itemset) (*Node, bool) {
	sorted := items.Sorted()
	mask := 0
	for _, it := range sorted {
		found := false
		for pos, t := range l.Target {
			if t == it {
				mask |= 1 << pos
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return &l.Nodes[mask], true
}

// SteepestPath walks from the empty itemset to the full target, at each
// level adding the item that maximizes |Δ| of the resulting node — the
// "items driving divergence increases" view the lattice visualization
// supports. The returned slice contains the node masks along the path,
// root first, target last.
func (l *Lattice) SteepestPath() []int {
	n := len(l.Target)
	full := (1 << n) - 1
	path := []int{0}
	mask := 0
	for mask != full {
		best, bestVal := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			bit := 1 << i
			if mask&bit != 0 {
				continue
			}
			cand := mask | bit
			if v := math.Abs(l.Nodes[cand].Divergence); v > bestVal {
				best, bestVal = cand, v
			}
		}
		mask = best
		path = append(path, mask)
	}
	return path
}

// CorrectiveEdge is one lattice edge along which the absolute divergence
// decreases: adding Item to the parent's itemset corrects it.
type CorrectiveEdge struct {
	ParentMask, ChildMask int
	Item                  fpm.Item
	// Factor is |Δ(parent)| − |Δ(child)|, always positive.
	Factor float64
}

// CorrectiveEdges enumerates all corrective edges, strongest first.
func (l *Lattice) CorrectiveEdges() []CorrectiveEdge {
	n := len(l.Target)
	var out []CorrectiveEdge
	for mask := 1; mask < len(l.Nodes); mask++ {
		child := &l.Nodes[mask]
		for i := 0; i < n; i++ {
			bit := 1 << i
			if mask&bit == 0 {
				continue
			}
			parent := &l.Nodes[mask&^bit]
			factor := math.Abs(parent.Divergence) - math.Abs(child.Divergence)
			if factor > 0 {
				out = append(out, CorrectiveEdge{
					ParentMask: mask &^ bit,
					ChildMask:  mask,
					Item:       l.Target[i],
					Factor:     factor,
				})
			}
		}
	}
	// Insertion sort by decreasing factor (lattices are tiny).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Factor > out[j-1].Factor; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
