package lattice

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fpm"
)

// buildResult plants the Fig. 11 style structure: (g=1, p=hi) is highly
// divergent while adding q=z corrects it.
func buildResult(t testing.TB) (*core.Result, *fpm.TxDB) {
	t.Helper()
	b := dataset.NewBuilder("g", "p", "q")
	var truth, pred []bool
	add := func(g, p, q string, nFP, nTN int) {
		for i := 0; i < nFP; i++ {
			if err := b.Add(g, p, q); err != nil {
				t.Fatal(err)
			}
			truth = append(truth, false)
			pred = append(pred, true)
		}
		for i := 0; i < nTN; i++ {
			if err := b.Add(g, p, q); err != nil {
				t.Fatal(err)
			}
			truth = append(truth, false)
			pred = append(pred, false)
		}
	}
	add("1", "hi", "z", 3, 7)
	add("1", "hi", "w", 9, 1)
	add("1", "lo", "z", 2, 8)
	add("1", "lo", "w", 3, 7)
	add("0", "hi", "z", 2, 8)
	add("0", "hi", "w", 3, 7)
	add("0", "lo", "z", 2, 8)
	add("0", "lo", "w", 3, 7)
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fpm.NewTxDB(d, classes, core.NumConfusionClasses)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Explore(db, 0.01, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r, db
}

func target(t testing.TB, db *fpm.TxDB) fpm.Itemset {
	t.Helper()
	is, err := db.Catalog.ItemsetByNames("g=1", "p=hi", "q=z")
	if err != nil {
		t.Fatal(err)
	}
	return is
}

func TestBuildLatticeShape(t *testing.T) {
	r, db := buildResult(t)
	l, err := Build(r, target(t, db), core.FPR, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Nodes); got != 8 {
		t.Fatalf("nodes = %d, want 8", got)
	}
	levels := l.Levels()
	wantSizes := []int{1, 3, 3, 1}
	for i, w := range wantSizes {
		if len(levels[i]) != w {
			t.Errorf("level %d has %d nodes, want %d", i, len(levels[i]), w)
		}
	}
	// Root: divergence 0.
	if l.Nodes[0].Divergence != 0 {
		t.Errorf("root divergence = %v, want 0", l.Nodes[0].Divergence)
	}
	// Every node's divergence matches the core result.
	for mask := 1; mask < len(l.Nodes); mask++ {
		div, ok := r.Divergence(l.Nodes[mask].Items, core.FPR)
		if !ok {
			t.Fatalf("node %v not frequent", l.Nodes[mask].Items)
		}
		if div != l.Nodes[mask].Divergence {
			t.Errorf("node %v divergence mismatch", l.Nodes[mask].Items)
		}
	}
}

func TestLatticeEdges(t *testing.T) {
	r, db := buildResult(t)
	l, err := Build(r, target(t, db), core.FPR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Each node at level k has k parents and (n-k) children.
	n := len(l.Target)
	for mask, node := range l.Nodes {
		k := 0
		for x := mask; x != 0; x &= x - 1 {
			k++
		}
		if len(node.Parents) != k {
			t.Errorf("node %d has %d parents, want %d", mask, len(node.Parents), k)
		}
		if len(node.Children) != n-k {
			t.Errorf("node %d has %d children, want %d", mask, len(node.Children), n-k)
		}
	}
}

func TestLatticeCorrectiveMarks(t *testing.T) {
	r, db := buildResult(t)
	l, err := Build(r, target(t, db), core.FPR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The full target (g=1, p=hi, q=z) extends (g=1, p=hi) — which is very
	// divergent — with the corrective q=z, so it must be flagged.
	full := len(l.Nodes) - 1
	if !l.Nodes[full].Corrective {
		t.Error("full pattern not marked corrective")
	}
	if got := l.CorrectiveNodes(); len(got) == 0 {
		t.Error("no corrective nodes reported")
	}
}

func TestLatticeThresholdHighlight(t *testing.T) {
	r, db := buildResult(t)
	l, err := Build(r, target(t, db), core.FPR, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, node := range l.Nodes {
		if node.AboveThreshold {
			found = true
			if abs(node.Divergence) < 0.15 {
				t.Errorf("node %v flagged above threshold with Δ=%v", node.Items, node.Divergence)
			}
		}
	}
	if !found {
		t.Error("no node above threshold; fixture should have one")
	}
	// Threshold 0 disables highlighting.
	l0, err := Build(r, target(t, db), core.FPR, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range l0.Nodes {
		if node.AboveThreshold {
			t.Error("threshold 0 flagged a node")
		}
	}
}

func TestLatticeRenderings(t *testing.T) {
	r, db := buildResult(t)
	l, err := Build(r, target(t, db), core.FPR, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	ascii := l.ASCII()
	for _, want := range []string{"level 0", "level 3", "◇corrective", "g=1"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, ascii)
		}
	}
	dot := l.DOT()
	for _, want := range []string{"digraph lattice", "->", "diamond"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	r, db := buildResult(t)
	if _, err := Build(r, nil, core.FPR, 0); err == nil {
		t.Error("empty target accepted")
	}
	long := make(fpm.Itemset, 20)
	if _, err := Build(r, long, core.FPR, 0); err == nil {
		t.Error("oversized target accepted")
	}
	// An infrequent target must fail: raise the support threshold.
	rHigh, err := core.Explore(db, 0.6, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(rHigh, target(t, db), core.FPR, 0); err == nil {
		t.Error("infrequent target accepted")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
