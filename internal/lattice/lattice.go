// Package lattice implements the visual itemset-lattice exploration of
// the paper's Sec. 6.4: given a divergent pattern of interest I, it
// materializes the lattice of all subsets of I (each a frequent itemset),
// annotates every node with its divergence, marks nodes where a
// corrective phenomenon occurs and nodes above a user divergence
// threshold, and renders the result as ASCII text or Graphviz DOT.
package lattice

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fpm"
)

// Node is one itemset in the lattice of subsets of the target pattern.
type Node struct {
	Items      fpm.Itemset
	Support    float64
	Divergence float64
	// Corrective is true when some direct parent (one item fewer... one
	// item more is the child direction; here: the node extends a parent by
	// an item that decreased |Δ|) — i.e. the node exhibits the corrective
	// phenomenon of Def. 4.2 with respect to at least one incoming edge.
	Corrective bool
	// AboveThreshold is true when |Divergence| >= the threshold passed to
	// Build (matching the red square highlighting of Figure 11).
	AboveThreshold bool
	// Children holds masks of nodes obtained by adding one item.
	Children []int
	// Parents holds masks of nodes obtained by removing one item.
	Parents []int
	mask    int
	level   int
}

// Lattice is the subset lattice of one target itemset. Nodes are indexed
// by bitmask over the target's item positions; index 0 is the empty
// itemset (divergence 0 by definition).
type Lattice struct {
	Target fpm.Itemset
	Metric core.Metric
	// Threshold is the divergence highlight threshold T of Sec. 6.4.
	Threshold float64
	Nodes     []Node // dense, indexed by subset mask
	catalog   *fpm.Catalog
}

// Build constructs the lattice of all subsets of target, which must be a
// frequent itemset of the result. threshold is the user-selected
// divergence highlight level T (use 0 to highlight nothing special;
// nodes with |Δ| >= T are flagged).
func Build(r *core.Result, target fpm.Itemset, m core.Metric, threshold float64) (*Lattice, error) {
	if len(target) == 0 {
		return nil, fmt.Errorf("lattice: empty target pattern")
	}
	if len(target) > 16 {
		return nil, fmt.Errorf("lattice: target pattern too long (%d items)", len(target))
	}
	if _, ok := r.Lookup(target); !ok {
		return nil, fmt.Errorf("lattice: target %s is not frequent at support %v",
			r.DB.Catalog.Format(target), r.MinSup)
	}
	n := len(target)
	l := &Lattice{
		Target:    target,
		Metric:    m,
		Threshold: threshold,
		Nodes:     make([]Node, 1<<n),
		catalog:   r.DB.Catalog,
	}
	buf := make(fpm.Itemset, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, target[i])
			}
		}
		items := buf.Clone()
		p, ok := r.Lookup(items)
		if !ok {
			return nil, fmt.Errorf("lattice: subset %s missing from result",
				r.DB.Catalog.Format(items))
		}
		div := 0.0
		if mask != 0 {
			div = r.DivergenceOfTally(p.Tally, m)
		}
		node := Node{
			Items:          items,
			Support:        r.Support(p.Tally),
			Divergence:     div,
			AboveThreshold: threshold > 0 && math.Abs(div) >= threshold,
			mask:           mask,
			level:          popcount(mask),
		}
		l.Nodes[mask] = node
	}
	// Wire edges and corrective marks.
	for mask := 1; mask < 1<<n; mask++ {
		node := &l.Nodes[mask]
		for i := 0; i < n; i++ {
			bit := 1 << i
			if mask&bit == 0 {
				continue
			}
			parent := mask &^ bit
			node.Parents = append(node.Parents, parent)
			l.Nodes[parent].Children = append(l.Nodes[parent].Children, mask)
			if math.Abs(node.Divergence) < math.Abs(l.Nodes[parent].Divergence) {
				node.Corrective = true
			}
		}
	}
	return l, nil
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Levels groups node masks by itemset length, root first.
func (l *Lattice) Levels() [][]int {
	n := len(l.Target)
	out := make([][]int, n+1)
	for mask := range l.Nodes {
		lvl := l.Nodes[mask].level
		out[lvl] = append(out[lvl], mask)
	}
	for _, level := range out {
		sort.Ints(level)
	}
	return out
}

// CorrectiveNodes returns the masks of all nodes flagged corrective.
func (l *Lattice) CorrectiveNodes() []int {
	var out []int
	for mask := range l.Nodes {
		if l.Nodes[mask].Corrective {
			out = append(out, mask)
		}
	}
	return out
}

// label renders a node's itemset compactly.
func (l *Lattice) label(mask int) string {
	if mask == 0 {
		return "{}"
	}
	return l.catalog.Format(l.Nodes[mask].Items)
}

// ASCII renders the lattice level by level, marking corrective nodes with
// '◇' and above-threshold nodes with '■', mirroring Figure 11's legend.
func (l *Lattice) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lattice of %s (metric %s", l.label(len(l.Nodes)-1), l.Metric.Name)
	if l.Threshold > 0 {
		fmt.Fprintf(&b, ", threshold T=%.3g", l.Threshold)
	}
	b.WriteString(")\n")
	for lvl, masks := range l.Levels() {
		fmt.Fprintf(&b, "level %d:\n", lvl)
		for _, mask := range masks {
			n := &l.Nodes[mask]
			marks := ""
			if n.Corrective {
				marks += " ◇corrective"
			}
			if n.AboveThreshold {
				marks += " ■above-T"
			}
			fmt.Fprintf(&b, "  %-52s Δ=%+.4f sup=%.3f%s\n", l.label(mask), n.Divergence, n.Support, marks)
		}
	}
	return b.String()
}

// DOT renders the lattice as a Graphviz digraph. Corrective nodes are
// drawn as light-blue diamonds and above-threshold nodes as red boxes,
// matching Figure 11.
func (l *Lattice) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lattice {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n")
	for mask := range l.Nodes {
		n := &l.Nodes[mask]
		attrs := []string{fmt.Sprintf("label=\"%s\\nΔ=%+.3f\"", escapeDOT(l.label(mask)), n.Divergence)}
		switch {
		case n.AboveThreshold:
			attrs = append(attrs, "shape=box", "style=filled", "fillcolor=\"#f8d0d0\"")
		case n.Corrective:
			attrs = append(attrs, "shape=diamond", "style=filled", "fillcolor=\"#d0e8f8\"")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", mask, strings.Join(attrs, ", "))
	}
	for mask := range l.Nodes {
		for _, child := range l.Nodes[mask].Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", mask, child)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
