package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the reader and
// that every accepted dataset validates and round-trips through
// WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\nx,1\ny,2\n")
	f.Add("a\n\"quoted,comma\"\n")
	f.Add("")
	f.Add("a,b\nx\n")
	f.Add("h1,h2,h3\n,,\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input), CSVOptions{TrimSpace: true})
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		d2, err := ReadCSV(&buf, CSVOptions{})
		if err != nil {
			t.Fatalf("round trip unreadable: %v", err)
		}
		if d2.NumRows() != d.NumRows() || d2.NumAttrs() != d.NumAttrs() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				d2.NumRows(), d2.NumAttrs(), d.NumRows(), d.NumAttrs())
		}
	})
}
