package dataset_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/registry"
)

// FuzzParseCSV drives the dataset loader with arbitrary bytes and checks
// the pipeline invariants the server relies on:
//
//   - parsing never panics, on raw or canonicalized input;
//   - registry.Canonicalize is idempotent, and content hashes are
//     line-ending independent (the content-addressing contract);
//   - every accepted dataset validates;
//   - parse → write → parse is a fixpoint: the written form re-parses to
//     the same shape and re-writes byte-identically, so a stored dataset
//     never drifts across round trips.
func FuzzParseCSV(f *testing.F) {
	f.Add("a,b\nx,1\ny,2\n")
	f.Add("a\n\"quoted,comma\"\n")
	f.Add("")
	f.Add("a,b\nx\n")
	f.Add("h1,h2,h3\n,,\n")
	f.Add("a,b\r\nx,1\r\n")
	f.Add("a,b\rx,1\r")
	f.Add("col\n\"embedded\nnewline\"\n")
	f.Add("a,b\n x , 1 \n")
	f.Fuzz(func(t *testing.T, input string) {
		canon := registry.Canonicalize([]byte(input))
		if again := registry.Canonicalize(canon); !bytes.Equal(again, canon) {
			t.Fatalf("Canonicalize not idempotent:\n%q\n%q", canon, again)
		}
		if registry.HashBytes([]byte(input)) != registry.HashBytes(canon) {
			t.Fatal("content hash differs between raw and canonical bytes")
		}
		// The raw input must never panic, accepted or not.
		_, _ = dataset.ReadCSV(strings.NewReader(input), dataset.CSVOptions{TrimSpace: true})

		d, err := dataset.ReadCSV(bytes.NewReader(canon), dataset.CSVOptions{TrimSpace: true})
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var w1 bytes.Buffer
		if err := dataset.WriteCSV(&w1, d); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		d2, err := dataset.ReadCSV(bytes.NewReader(w1.Bytes()), dataset.CSVOptions{TrimSpace: true})
		if err != nil {
			t.Fatalf("round trip unreadable: %v", err)
		}
		if d2.NumRows() != d.NumRows() || d2.NumAttrs() != d.NumAttrs() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				d2.NumRows(), d2.NumAttrs(), d.NumRows(), d.NumAttrs())
		}
		for r := range d.Rows {
			for c := 0; c < d.NumAttrs(); c++ {
				if d.Value(r, c) != d2.Value(r, c) {
					t.Fatalf("round trip changed cell (%d,%d): %q vs %q",
						r, c, d.Value(r, c), d2.Value(r, c))
				}
			}
		}
		var w2 bytes.Buffer
		if err := dataset.WriteCSV(&w2, d2); err != nil {
			t.Fatalf("second write-back failed: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write form is not a fixpoint:\n%q\n%q", w1.Bytes(), w2.Bytes())
		}
	})
}
