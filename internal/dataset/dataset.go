// Package dataset implements the discrete tabular data model of the
// paper's Sec. 3.1: an n-dimensional dataset over a schema of attributes,
// each with a finite discrete domain. Rows store value codes (indexes
// into the attribute domain), which makes itemset mining and tallying a
// matter of small-integer comparisons.
//
// Continuous attributes must be discretized (package discretize) before a
// Dataset is built, exactly as the paper requires for its frequent
// pattern mining substrate.
package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute describes one column of a dataset: its name and the ordered
// list of values forming its discrete domain. The position of a value in
// Values is its code, used in Dataset rows.
type Attribute struct {
	Name   string
	Values []string
}

// Cardinality returns the domain size m_a of the attribute.
func (a *Attribute) Cardinality() int { return len(a.Values) }

// ValueCode returns the code for value v, or -1 if v is not in the domain.
func (a *Attribute) ValueCode(v string) int {
	for i, w := range a.Values {
		if w == v {
			return i
		}
	}
	return -1
}

// Dataset is a set of instances over a fixed schema. Rows[i][j] holds the
// value code of attribute j in instance i.
type Dataset struct {
	Attrs []Attribute
	Rows  [][]int32
}

// NumRows returns |D|, the number of instances.
func (d *Dataset) NumRows() int { return len(d.Rows) }

// NumAttrs returns |A|, the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.Attrs) }

// AttrIndex returns the position of the attribute with the given name, or
// -1 if no such attribute exists.
func (d *Dataset) AttrIndex(name string) int {
	for i := range d.Attrs {
		if d.Attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// Value returns the string value of attribute attr in row row.
func (d *Dataset) Value(row, attr int) string {
	return d.Attrs[attr].Values[d.Rows[row][attr]]
}

// Validate checks structural invariants: non-empty schema, unique
// attribute names, non-empty domains with unique values, and rows whose
// codes are within their attribute domains. It returns the first problem
// found, or nil.
func (d *Dataset) Validate() error {
	if len(d.Attrs) == 0 {
		return fmt.Errorf("dataset: empty schema")
	}
	names := make(map[string]bool, len(d.Attrs))
	for i := range d.Attrs {
		a := &d.Attrs[i]
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if names[a.Name] {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		names[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("dataset: attribute %q has empty domain", a.Name)
		}
		vals := make(map[string]bool, len(a.Values))
		for _, v := range a.Values {
			if v == "" {
				// Empty values would render as the ambiguous item "attr="
				// and do not survive a CSV round trip (a lone empty field
				// reads back as a skipped blank line).
				return fmt.Errorf("dataset: attribute %q has an empty-string value", a.Name)
			}
			if vals[v] {
				return fmt.Errorf("dataset: attribute %q has duplicate value %q", a.Name, v)
			}
			vals[v] = true
		}
	}
	for r, row := range d.Rows {
		if len(row) != len(d.Attrs) {
			return fmt.Errorf("dataset: row %d has %d values, schema has %d attributes",
				r, len(row), len(d.Attrs))
		}
		for j, code := range row {
			if code < 0 || int(code) >= len(d.Attrs[j].Values) {
				return fmt.Errorf("dataset: row %d attribute %q code %d out of domain [0,%d)",
					r, d.Attrs[j].Name, code, len(d.Attrs[j].Values))
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Attrs: make([]Attribute, len(d.Attrs)),
		Rows:  make([][]int32, len(d.Rows)),
	}
	for i, a := range d.Attrs {
		c.Attrs[i] = Attribute{Name: a.Name, Values: append([]string(nil), a.Values...)}
	}
	for i, r := range d.Rows {
		c.Rows[i] = append([]int32(nil), r...)
	}
	return c
}

// Subset returns a new dataset containing only the given row indexes, in
// order. The schema is shared structurally (copied headers, shared value
// strings); row slices are referenced, not copied.
func (d *Dataset) Subset(rows []int) *Dataset {
	s := &Dataset{Attrs: d.Attrs, Rows: make([][]int32, len(rows))}
	for i, r := range rows {
		s.Rows[i] = d.Rows[r]
	}
	return s
}

// DropAttrs returns a new dataset without the named attributes. Unknown
// names are reported as an error so callers notice schema drift.
func (d *Dataset) DropAttrs(names ...string) (*Dataset, error) {
	drop := make(map[int]bool, len(names))
	for _, n := range names {
		idx := d.AttrIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("dataset: cannot drop unknown attribute %q", n)
		}
		drop[idx] = true
	}
	keep := make([]int, 0, len(d.Attrs)-len(drop))
	for i := range d.Attrs {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	out := &Dataset{Attrs: make([]Attribute, len(keep)), Rows: make([][]int32, len(d.Rows))}
	for i, j := range keep {
		out.Attrs[i] = d.Attrs[j]
	}
	for r, row := range d.Rows {
		nr := make([]int32, len(keep))
		for i, j := range keep {
			nr[i] = row[j]
		}
		out.Rows[r] = nr
	}
	return out, nil
}

// Column extracts the string values of one attribute for all rows.
func (d *Dataset) Column(attr int) []string {
	out := make([]string, len(d.Rows))
	for i, row := range d.Rows {
		out[i] = d.Attrs[attr].Values[row[attr]]
	}
	return out
}

// ColumnCodes extracts the value codes of one attribute for all rows.
func (d *Dataset) ColumnCodes(attr int) []int32 {
	out := make([]int32, len(d.Rows))
	for i, row := range d.Rows {
		out[i] = row[attr]
	}
	return out
}

// String returns a short human-readable summary of the dataset shape.
func (d *Dataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataset(%d rows, %d attrs:", d.NumRows(), d.NumAttrs())
	for i := range d.Attrs {
		fmt.Fprintf(&b, " %s[%d]", d.Attrs[i].Name, d.Attrs[i].Cardinality())
	}
	b.WriteString(")")
	return b.String()
}

// Builder incrementally assembles a dataset from string records, growing
// attribute domains as new values appear. Domains keep first-seen order;
// call SortDomains to canonicalize.
type Builder struct {
	attrs  []Attribute
	lookup []map[string]int32
	rows   [][]int32
}

// NewBuilder creates a builder for the given attribute names.
func NewBuilder(attrNames ...string) *Builder {
	b := &Builder{
		attrs:  make([]Attribute, len(attrNames)),
		lookup: make([]map[string]int32, len(attrNames)),
	}
	for i, n := range attrNames {
		b.attrs[i] = Attribute{Name: n}
		b.lookup[i] = make(map[string]int32)
	}
	return b
}

// Add appends one record. The number of values must match the schema.
func (b *Builder) Add(values ...string) error {
	if len(values) != len(b.attrs) {
		return fmt.Errorf("dataset: record has %d values, schema has %d attributes",
			len(values), len(b.attrs))
	}
	row := make([]int32, len(values))
	for j, v := range values {
		code, ok := b.lookup[j][v]
		if !ok {
			code = int32(len(b.attrs[j].Values))
			b.attrs[j].Values = append(b.attrs[j].Values, v)
			b.lookup[j][v] = code
		}
		row[j] = code
	}
	b.rows = append(b.rows, row)
	return nil
}

// SortDomains reorders every attribute domain lexicographically and
// remaps all stored rows accordingly. Useful for deterministic output
// independent of record order.
func (b *Builder) SortDomains() {
	for j := range b.attrs {
		old := b.attrs[j].Values
		sorted := append([]string(nil), old...)
		sort.Strings(sorted)
		remap := make([]int32, len(old))
		for newCode, v := range sorted {
			remap[b.lookup[j][v]] = int32(newCode)
		}
		b.attrs[j].Values = sorted
		for v, c := range b.lookup[j] {
			b.lookup[j][v] = remap[c]
		}
		for _, row := range b.rows {
			row[j] = remap[row[j]]
		}
	}
}

// Dataset finalizes the builder. The builder must not be reused after.
func (b *Builder) Dataset() (*Dataset, error) {
	d := &Dataset{Attrs: b.attrs, Rows: b.rows}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
