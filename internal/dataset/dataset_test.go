package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder("color", "size")
	for _, rec := range [][]string{
		{"red", "S"}, {"blue", "M"}, {"red", "L"}, {"green", "S"},
	} {
		if err := b.Add(rec...); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	d := buildSmall(t)
	if d.NumRows() != 4 || d.NumAttrs() != 2 {
		t.Fatalf("shape = %dx%d, want 4x2", d.NumRows(), d.NumAttrs())
	}
	if got := d.AttrIndex("size"); got != 1 {
		t.Errorf("AttrIndex(size) = %d, want 1", got)
	}
	if got := d.AttrIndex("nope"); got != -1 {
		t.Errorf("AttrIndex(nope) = %d, want -1", got)
	}
	if got := d.Value(0, 0); got != "red" {
		t.Errorf("Value(0,0) = %q, want red", got)
	}
	if got := d.Attrs[0].Cardinality(); got != 3 {
		t.Errorf("color cardinality = %d, want 3", got)
	}
	if got := d.Attrs[0].ValueCode("green"); got < 0 {
		t.Errorf("ValueCode(green) = %d, want >= 0", got)
	}
	if got := d.Attrs[0].ValueCode("???"); got != -1 {
		t.Errorf("ValueCode(???) = %d, want -1", got)
	}
}

func TestBuilderArityMismatch(t *testing.T) {
	b := NewBuilder("a", "b")
	if err := b.Add("x"); err == nil {
		t.Error("Add with wrong arity succeeded, want error")
	}
}

func TestSortDomains(t *testing.T) {
	b := NewBuilder("x")
	for _, v := range []string{"zebra", "apple", "mango"} {
		if err := b.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	b.SortDomains()
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"apple", "mango", "zebra"}
	for i, w := range want {
		if d.Attrs[0].Values[i] != w {
			t.Fatalf("domain = %v, want %v", d.Attrs[0].Values, want)
		}
	}
	// Rows must be remapped consistently: row 0 was "zebra".
	if got := d.Value(0, 0); got != "zebra" {
		t.Errorf("row 0 value after sort = %q, want zebra", got)
	}
}

func TestValidateRejectsBadData(t *testing.T) {
	cases := []struct {
		name string
		d    Dataset
	}{
		{"empty schema", Dataset{}},
		{"empty attr name", Dataset{Attrs: []Attribute{{Name: "", Values: []string{"a"}}}}},
		{"dup attr", Dataset{Attrs: []Attribute{
			{Name: "x", Values: []string{"a"}}, {Name: "x", Values: []string{"a"}}}}},
		{"empty domain", Dataset{Attrs: []Attribute{{Name: "x"}}}},
		{"dup value", Dataset{Attrs: []Attribute{{Name: "x", Values: []string{"a", "a"}}}}},
		{"ragged row", Dataset{
			Attrs: []Attribute{{Name: "x", Values: []string{"a"}}},
			Rows:  [][]int32{{0, 0}}}},
		{"code out of range", Dataset{
			Attrs: []Attribute{{Name: "x", Values: []string{"a"}}},
			Rows:  [][]int32{{5}}}},
	}
	for _, c := range cases {
		if err := c.d.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", c.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := buildSmall(t)
	c := d.Clone()
	c.Rows[0][0] = 99
	c.Attrs[0].Values[0] = "mutated"
	if d.Rows[0][0] == 99 || d.Attrs[0].Values[0] == "mutated" {
		t.Error("Clone shares storage with original")
	}
}

func TestSubsetAndColumns(t *testing.T) {
	d := buildSmall(t)
	s := d.Subset([]int{2, 0})
	if s.NumRows() != 2 {
		t.Fatalf("subset rows = %d, want 2", s.NumRows())
	}
	if got := s.Value(0, 0); got != "red" {
		t.Errorf("subset Value(0,0) = %q, want red", got)
	}
	col := d.Column(1)
	if len(col) != 4 || col[0] != "S" || col[1] != "M" {
		t.Errorf("Column(1) = %v", col)
	}
	codes := d.ColumnCodes(0)
	if len(codes) != 4 {
		t.Errorf("ColumnCodes len = %d", len(codes))
	}
}

func TestDropAttrs(t *testing.T) {
	d := buildSmall(t)
	out, err := d.DropAttrs("color")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumAttrs() != 1 || out.Attrs[0].Name != "size" {
		t.Errorf("DropAttrs result schema = %v", out.Attrs)
	}
	if out.NumRows() != 4 {
		t.Errorf("DropAttrs rows = %d, want 4", out.NumRows())
	}
	if _, err := d.DropAttrs("ghost"); err == nil {
		t.Error("DropAttrs(ghost) succeeded, want error")
	}
}

func TestReadWriteCSVRoundTrip(t *testing.T) {
	in := "a,b\nx,1\ny,2\nx,2\n"
	d, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 || d.NumAttrs() != 2 {
		t.Fatalf("shape = %dx%d", d.NumRows(), d.NumAttrs())
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCSV(&buf, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRows() != d.NumRows() {
		t.Fatalf("round trip lost rows: %d vs %d", d2.NumRows(), d.NumRows())
	}
	for r := range d.Rows {
		for j := range d.Attrs {
			if d.Value(r, j) != d2.Value(r, j) {
				t.Fatalf("round trip mismatch at (%d,%d)", r, j)
			}
		}
	}
}

func TestReadCSVMissingValues(t *testing.T) {
	in := "a,b\nx,1\n?,2\ny,3\n"
	// DropMissing: the '?' record disappears.
	d, err := ReadCSV(strings.NewReader(in), CSVOptions{
		MissingValues: []string{"?"}, DropMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 2 {
		t.Errorf("rows = %d, want 2 after dropping missing", d.NumRows())
	}
	// Without DropMissing: error.
	if _, err := ReadCSV(strings.NewReader(in), CSVOptions{
		MissingValues: []string{"?"},
	}); err == nil {
		t.Error("ReadCSV with missing value succeeded, want error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("ReadCSV(empty) succeeded, want error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\nx\n"), CSVOptions{}); err == nil {
		t.Error("ReadCSV(ragged) succeeded, want error")
	}
}

func TestReadCSVTrimAndDelimiter(t *testing.T) {
	in := "a; b\n x ;y\n"
	d, err := ReadCSV(strings.NewReader(in), CSVOptions{Comma: ';', TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Attrs[1].Name != "b" {
		t.Errorf("header = %v, want trimmed", d.Attrs)
	}
	if got := d.Value(0, 0); got != "x" {
		t.Errorf("Value(0,0) = %q, want trimmed x", got)
	}
}

// Property: building a dataset from arbitrary records and reading back
// yields exactly the input values.
func TestBuilderRoundTripProperty(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		if len(raw) == 0 {
			return true
		}
		b := NewBuilder("p", "q", "r")
		want := make([][3]string, len(raw))
		for i, rec := range raw {
			vals := [3]string{
				string(rune('a' + rec[0]%5)),
				string(rune('f' + rec[1]%4)),
				string(rune('k' + rec[2]%3)),
			}
			want[i] = vals
			if err := b.Add(vals[0], vals[1], vals[2]); err != nil {
				return false
			}
		}
		b.SortDomains()
		d, err := b.Dataset()
		if err != nil {
			return false
		}
		for i := range want {
			for j := 0; j < 3; j++ {
				if d.Value(i, j) != want[i][j] {
					return false
				}
			}
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsEmptyValue(t *testing.T) {
	d := Dataset{Attrs: []Attribute{{Name: "x", Values: []string{"a", ""}}}}
	if err := d.Validate(); err == nil {
		t.Error("empty-string value accepted")
	}
	// ReadCSV surfaces the same rejection for empty cells...
	if _, err := ReadCSV(strings.NewReader("x\nval\n\"\"\n"), CSVOptions{}); err == nil {
		t.Error("CSV with empty cell accepted")
	}
	// ...unless the caller declares them missing and drops them.
	d2, err := ReadCSV(strings.NewReader("x,y\nval,1\n,2\n"), CSVOptions{
		MissingValues: []string{""}, DropMissing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRows() != 1 {
		t.Errorf("rows = %d, want 1 after dropping empty", d2.NumRows())
	}
}
