package dataset

import (
	"fmt"
	"math/rand"
	"testing"
)

func splitFixture(t testing.TB, n int) (*Dataset, []bool) {
	t.Helper()
	b := NewBuilder("x")
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		if err := b.Add(fmt.Sprint(i % 4)); err != nil {
			t.Fatal(err)
		}
		labels[i] = i%3 == 0
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return d, labels
}

func TestSplitPartitions(t *testing.T) {
	d, labels := splitFixture(t, 100)
	rng := rand.New(rand.NewSource(1))
	train, test, trainIdx, testIdx, err := Split(d, rng, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if test.NumRows() != 30 || train.NumRows() != 70 {
		t.Fatalf("split sizes %d/%d", train.NumRows(), test.NumRows())
	}
	// Disjoint and covering.
	seen := map[int]bool{}
	for _, i := range append(append([]int(nil), trainIdx...), testIdx...) {
		if seen[i] {
			t.Fatalf("row %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatalf("partition covers %d rows", len(seen))
	}
	// Labels line up with the views.
	trainLabels := SelectLabels(labels, trainIdx)
	for i, r := range trainIdx {
		if trainLabels[i] != labels[r] {
			t.Fatal("label misaligned")
		}
		if train.Value(i, 0) != d.Value(r, 0) {
			t.Fatal("row misaligned")
		}
	}
}

func TestSplitEdges(t *testing.T) {
	d, _ := splitFixture(t, 10)
	rng := rand.New(rand.NewSource(2))
	if _, _, _, _, err := Split(d, rng, 0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, _, _, _, err := Split(d, rng, 1); err == nil {
		t.Error("fraction 1 accepted")
	}
	single, _ := splitFixture(t, 1)
	if _, _, _, _, err := Split(single, rng, 0.5); err == nil {
		t.Error("1-row dataset split")
	}
	// Tiny fractions still yield at least one test row.
	_, test, _, _, err := Split(d, rng, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if test.NumRows() < 1 {
		t.Error("empty test set")
	}
}

func TestSplitDeterministic(t *testing.T) {
	d, _ := splitFixture(t, 50)
	_, _, a, _, err := Split(d, rand.New(rand.NewSource(7)), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, b, _, err := Split(d, rand.New(rand.NewSource(7)), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed splits differ")
		}
	}
}
