package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// CSVOptions controls CSV parsing for ReadCSV.
type CSVOptions struct {
	// Comma is the field delimiter; ',' when zero.
	Comma rune
	// MissingValues lists cell contents treated as missing (e.g. "?", "").
	MissingValues []string
	// DropMissing, when true, silently skips records containing missing
	// values (the paper's standard preprocessing). When false a missing
	// value is an error.
	DropMissing bool
	// TrimSpace trims surrounding whitespace from every cell.
	TrimSpace bool
}

// ReadCSV reads a headered CSV stream into a Dataset. Every column is
// treated as categorical; continuous columns should be discretized
// afterwards (or pre-discretized in the file).
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = 0 // require rectangular input

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if opts.TrimSpace {
		for i := range header {
			header[i] = strings.TrimSpace(header[i])
		}
	}
	missing := make(map[string]bool, len(opts.MissingValues))
	for _, m := range opts.MissingValues {
		missing[m] = true
	}

	b := NewBuilder(header...)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line++
		if opts.TrimSpace {
			for i := range rec {
				rec[i] = strings.TrimSpace(rec[i])
			}
		}
		skip := false
		for i, v := range rec {
			if missing[v] {
				if opts.DropMissing {
					skip = true
					break
				}
				return nil, fmt.Errorf("dataset: line %d: missing value in column %q", line, header[i])
			}
		}
		if skip {
			continue
		}
		if err := b.Add(rec...); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	b.SortDomains()
	return b.Dataset()
}

// WriteCSV writes the dataset as headered CSV.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.Attrs))
	for i := range d.Attrs {
		header[i] = d.Attrs[i].Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, len(d.Attrs))
	for r := range d.Rows {
		for j := range d.Attrs {
			rec[j] = d.Value(r, j)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
