package dataset

import (
	"fmt"
	"math/rand"
)

// Split partitions the dataset's rows into a train and a test subset by
// shuffling with the given source and holding out testFraction of the
// rows. It returns the two views plus the original row indexes of each
// (so labels can be partitioned in lockstep).
func Split(d *Dataset, rng *rand.Rand, testFraction float64) (train, test *Dataset, trainIdx, testIdx []int, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("dataset: test fraction %v out of (0,1)", testFraction)
	}
	if d.NumRows() < 2 {
		return nil, nil, nil, nil, fmt.Errorf("dataset: cannot split %d rows", d.NumRows())
	}
	perm := rng.Perm(d.NumRows())
	nTest := int(float64(d.NumRows()) * testFraction)
	if nTest == 0 {
		nTest = 1
	}
	if nTest == d.NumRows() {
		nTest = d.NumRows() - 1
	}
	testIdx = append([]int(nil), perm[:nTest]...)
	trainIdx = append([]int(nil), perm[nTest:]...)
	return d.Subset(trainIdx), d.Subset(testIdx), trainIdx, testIdx, nil
}

// SelectLabels gathers labels for the given original row indexes — the
// companion to Split for carrying Boolean columns along.
func SelectLabels(labels []bool, idx []int) []bool {
	out := make([]bool, len(idx))
	for i, r := range idx {
		out[i] = labels[r]
	}
	return out
}
