package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options fields left zero.
const (
	DefaultReplication    = 2
	DefaultHeartbeatEvery = 500 * time.Millisecond
	DefaultAttemptTimeout = 2 * time.Second
	DefaultMaxAttempts    = 3
	DefaultBackoffBase    = 25 * time.Millisecond
	DefaultBackoffCap     = 1 * time.Second
	DefaultHedgeAfter     = 250 * time.Millisecond
	DefaultChunkSize      = 256 << 10
)

// Options configures a Node. Self, Transport and Local are required.
type Options struct {
	// Self is this node's ID; Peers are the other members. Membership is
	// static for the life of the process (operators restart with a new
	// -peers list to resize); liveness within the member set is dynamic.
	Self  NodeID
	Peers []NodeID
	// ReplicationFactor is how many owners each content hash has
	// (DefaultReplication when <= 0; clamped to the cluster size).
	ReplicationFactor int
	// VirtualNodes per member on the placement ring.
	VirtualNodes int
	// HeartbeatEvery is the gossip cadence; <= 0 disables the background
	// loop (tests call Tick themselves).
	HeartbeatEvery time.Duration
	// PhiThreshold is the suspicion level at which a peer is declared
	// dead (DefaultPhiThreshold when <= 0).
	PhiThreshold float64
	// AttemptTimeout bounds one forward or replicate attempt.
	AttemptTimeout time.Duration
	// MaxAttempts bounds attempts per peer before moving on.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped exponential backoff
	// between attempts; every wait is jittered to ±50%.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeAfter is how long a forward waits on one owner before
	// launching the attempt to the next replica in parallel.
	HedgeAfter time.Duration
	// ChunkSize bounds replication chunk payloads.
	ChunkSize int

	Transport Transport
	Local     Local
	// Clock defaults to the real clock; chaos tests inject a fake.
	Clock Clock
	// Seed fixes the jitter RNG for deterministic tests; 0 seeds from
	// the clock.
	Seed int64
	// Logf, when set, receives diagnostic lines (deaths, adoptions).
	Logf func(format string, args ...any)
}

// Stats is the cluster section of /statsz. Peers is sorted by node ID.
type Stats struct {
	Self        NodeID       `json:"self"`
	Members     int          `json:"members"`
	Replication int          `json:"replication"`
	Peers       []PeerHealth `json:"peers"`

	HeartbeatsSent int64 `json:"heartbeats_sent"`
	HeartbeatsRecv int64 `json:"heartbeats_received"`
	Deaths         int64 `json:"deaths"`
	Resurrections  int64 `json:"resurrections"`

	ForwardsOut     int64 `json:"forwards_out"`
	ForwardsIn      int64 `json:"forwards_in"`
	ForwardRetries  int64 `json:"forward_retries"`
	Hedges          int64 `json:"hedges"`
	ForwardFailures int64 `json:"forward_failures"`

	ReplicaChunksOut   int64 `json:"replica_chunks_out"`
	ReplicaChunksIn    int64 `json:"replica_chunks_in"`
	ReplicaPayloadsIn  int64 `json:"replica_payloads_in"`
	ReplicaResumes     int64 `json:"replica_resumes"`
	ReplicaRejects     int64 `json:"replica_rejects"`
	ReplicateFailures  int64 `json:"replicate_failures"`
	HandoffRecords     int64 `json:"handoff_records"`
	Adoptions          int64 `json:"adoptions"`
	AdoptFailures      int64 `json:"adopt_failures"`
}

// Node is one cluster member: placement ring + health tracker + the
// forwarding/replication client, plus the Handler side its transport
// delivers into. All methods are safe for concurrent use.
type Node struct {
	opts   Options
	ring   *Ring
	health *health
	clock  Clock

	seq atomic.Uint64 // own heartbeat sequence

	rngMu sync.Mutex
	rng   *rand.Rand

	// assembly holds in-flight replica payloads keyed origin|kind|key.
	asmMu    sync.Mutex
	assembly map[string]*replicaBuf

	// handoff holds complete job records replicated from peers, keyed
	// origin → job ID, ready for adoption if the origin dies.
	hoMu    sync.Mutex
	handoff map[NodeID]map[string]JobRecord

	loopStop chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once

	heartbeatsSent atomic.Int64
	heartbeatsRecv atomic.Int64
	deaths         atomic.Int64
	resurrections  atomic.Int64

	forwardsOut     atomic.Int64
	forwardsIn      atomic.Int64
	forwardRetries  atomic.Int64
	hedges          atomic.Int64
	forwardFailures atomic.Int64

	chunksOut      atomic.Int64
	chunksIn       atomic.Int64
	payloadsIn     atomic.Int64
	resumes        atomic.Int64
	rejects        atomic.Int64
	replFailures   atomic.Int64
	handoffRecords atomic.Int64
	adoptions      atomic.Int64
	adoptFailures  atomic.Int64
}

// NewNode builds a node over opts and starts nothing: call Start for
// the background gossip loop, or drive Tick manually.
func NewNode(opts Options) (*Node, error) {
	if opts.Self == "" {
		return nil, fmt.Errorf("cluster: Options.Self is required")
	}
	if opts.Transport == nil {
		return nil, fmt.Errorf("cluster: Options.Transport is required")
	}
	if opts.Local == nil {
		return nil, fmt.Errorf("cluster: Options.Local is required")
	}
	if opts.ReplicationFactor <= 0 {
		opts.ReplicationFactor = DefaultReplication
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = DefaultAttemptTimeout
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.BackoffBase < 0 {
		opts.BackoffBase = 0
	} else if opts.BackoffBase == 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = DefaultBackoffCap
	}
	if opts.HedgeAfter <= 0 {
		opts.HedgeAfter = DefaultHedgeAfter
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = DefaultChunkSize
	}
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	if opts.ReplicationFactor > 1+len(opts.Peers) {
		opts.ReplicationFactor = 1 + len(opts.Peers)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = opts.Clock.Now().UnixNano()
	}

	ring := NewRing(opts.VirtualNodes)
	ring.Add(opts.Self)
	for _, p := range opts.Peers {
		ring.Add(p)
	}
	bootstrap := opts.HeartbeatEvery
	if bootstrap <= 0 {
		bootstrap = DefaultHeartbeatEvery
	}
	n := &Node{
		opts:     opts,
		ring:     ring,
		clock:    opts.Clock,
		rng:      rand.New(rand.NewSource(seed)),
		assembly: make(map[string]*replicaBuf),
		handoff:  make(map[NodeID]map[string]JobRecord),
	}
	n.health = newHealth(opts.PhiThreshold, bootstrap, opts.Clock)
	n.health.onDeath = n.peerDied
	n.health.onAlive = func(NodeID) { n.resurrections.Add(1) }
	for _, p := range opts.Peers {
		n.health.watch(p)
	}
	return n, nil
}

// Self returns this node's ID.
func (n *Node) Self() NodeID { return n.opts.Self }

// Replication returns the effective replication factor.
func (n *Node) Replication() int { return n.opts.ReplicationFactor }

// Owners returns the replica set for key, in priority order.
func (n *Node) Owners(key string) []NodeID {
	return n.ring.Owners(key, n.opts.ReplicationFactor)
}

// IsOwner reports whether this node is in key's replica set.
func (n *Node) IsOwner(key string) bool {
	for _, id := range n.Owners(key) {
		if id == n.opts.Self {
			return true
		}
	}
	return false
}

// Alive reports the health tracker's verdict on a peer (self is always
// alive).
func (n *Node) Alive(id NodeID) bool {
	return id == n.opts.Self || n.health.alive(id)
}

// Start launches the background gossip loop (when HeartbeatEvery > 0).
func (n *Node) Start() {
	if n.opts.HeartbeatEvery <= 0 || n.loopStop != nil {
		return
	}
	n.loopStop = make(chan struct{})
	n.loopDone = make(chan struct{})
	go n.loop()
}

// Close stops the gossip loop. Idempotent.
func (n *Node) Close() {
	n.stopOnce.Do(func() {
		if n.loopStop != nil {
			close(n.loopStop)
			<-n.loopDone
		}
	})
}

func (n *Node) loop() {
	defer close(n.loopDone)
	t := time.NewTicker(n.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.loopStop:
			return
		case <-t.C:
			n.Tick()
		}
	}
}

// Tick runs one gossip round: emit a heartbeat (with the piggybacked
// view) to every peer, then sweep the failure detector. The background
// loop calls it on a ticker; deterministic tests call it directly.
// lint:ignore ctxflow gossip rounds are initiated by the node's own ticker, not a caller request; each send is bounded by the per-attempt timeout
func (n *Node) Tick() {
	hb := Heartbeat{From: n.opts.Self, Seq: n.seq.Add(1), View: n.health.seqs()}
	var wg sync.WaitGroup
	for _, p := range n.opts.Peers {
		wg.Add(1)
		go func(to NodeID) {
			defer wg.Done()
			ctx, cancel := n.attemptCtx()
			defer cancel()
			if err := n.opts.Transport.Heartbeat(ctx, to, hb); err == nil {
				n.heartbeatsSent.Add(1)
			}
		}(p)
	}
	wg.Wait()
	n.health.sweep()
}

// attemptCtx bounds one transport attempt.
// lint:ignore ctxflow gossip and replication attempts are initiated by the node's own loops, not a caller request; the per-attempt timeout is the cancellation contract
func (n *Node) attemptCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), n.opts.AttemptTimeout)
}

// jittered returns the backoff for attempt i: capped exponential with
// ±50% jitter, so synchronized retries from many forwarders spread out.
func (n *Node) jittered(attempt int) time.Duration {
	d := n.opts.BackoffBase << uint(attempt)
	if d > n.opts.BackoffCap || d <= 0 {
		d = n.opts.BackoffCap
	}
	n.rngMu.Lock()
	f := 0.5 + n.rng.Float64() // [0.5, 1.5)
	n.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// SubmitJob routes a job to the owners of its dataset: locally when
// this node is an owner, otherwise forwarded to the highest-priority
// live owner with per-attempt timeouts, capped exponential backoff with
// jitter, and a hedged attempt to the next replica when an owner stays
// silent past HedgeAfter. A rejection from an owner (admission) is
// definitive and is returned without hedging — the cluster must not
// turn one tenant's 429 into a retry storm.
func (n *Node) SubmitJob(ctx context.Context, req JobRequest) (JobAck, error) {
	owners := n.Owners(req.Dataset)
	if len(owners) == 0 {
		return JobAck{}, fmt.Errorf("cluster: empty ring")
	}
	for _, id := range owners {
		if id == n.opts.Self {
			return n.opts.Local.RunJob(ctx, req)
		}
	}
	// Prefer live owners in priority order; fall back to the full set
	// when everything looks dead (suspicion may be wrong).
	targets := make([]NodeID, 0, len(owners))
	for _, id := range owners {
		if n.health.alive(id) {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		targets = owners
	}
	n.forwardsOut.Add(1)
	ack, err := n.forward(ctx, targets, req)
	if err != nil {
		n.forwardFailures.Add(1)
	}
	return ack, err
}

// forward races the targets: the first is tried immediately, each
// subsequent replica is launched when the previous ones have all failed
// or when HedgeAfter elapses without an answer. First success wins;
// a rejection (ErrPeerRejected) is definitive and returned immediately.
func (n *Node) forward(ctx context.Context, targets []NodeID, req JobRequest) (JobAck, error) {
	type outcome struct {
		ack JobAck
		err error
	}
	results := make(chan outcome, len(targets))
	outstanding := 0
	next := 0
	launch := func(hedged bool) {
		to := targets[next]
		next++
		outstanding++
		if hedged {
			n.hedges.Add(1)
		}
		go func() {
			ack, err := n.tryPeer(ctx, to, req)
			results <- outcome{ack, err}
		}()
	}
	launch(false)
	var lastErr error
	for {
		var hedge <-chan time.Time
		if next < len(targets) {
			hedge = n.clock.After(n.opts.HedgeAfter)
		}
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				return r.ack, nil
			}
			if errors.Is(r.err, ErrPeerRejected) {
				return JobAck{}, r.err
			}
			lastErr = r.err
			if next < len(targets) {
				launch(false)
			} else if outstanding == 0 {
				return JobAck{}, lastErr
			}
		case <-hedge:
			launch(true)
		case <-ctx.Done():
			return JobAck{}, ctx.Err()
		}
	}
}

// tryPeer runs the per-peer retry loop: MaxAttempts attempts, each
// under its own timeout, with jittered capped-exponential backoff in
// between. Rejections abort immediately.
func (n *Node) tryPeer(ctx context.Context, to NodeID, req JobRequest) (JobAck, error) {
	var lastErr error
	for attempt := 0; attempt < n.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			n.forwardRetries.Add(1)
			select {
			case <-n.clock.After(n.jittered(attempt - 1)):
			case <-ctx.Done():
				return JobAck{}, ctx.Err()
			}
		}
		actx, cancel := context.WithTimeout(ctx, n.opts.AttemptTimeout)
		ack, err := n.opts.Transport.ForwardJob(actx, to, req)
		cancel()
		if err == nil {
			return ack, nil
		}
		if errors.Is(err, ErrPeerRejected) || ctx.Err() != nil {
			return JobAck{}, err
		}
		lastErr = err
	}
	return JobAck{}, fmt.Errorf("cluster: forwarding to %s: %w", to, lastErr)
}

// HandleHeartbeat folds a received heartbeat into the health tracker:
// the sender's own sequence is direct proof of life, and every entry of
// its piggybacked view is indirect proof for the peer it names.
func (n *Node) HandleHeartbeat(hb Heartbeat) {
	n.heartbeatsRecv.Add(1)
	n.health.observe(hb.From, hb.Seq)
	for id, seq := range hb.View {
		if id != n.opts.Self {
			n.health.observe(id, seq)
		}
	}
}

// HandleForwardJob is the receiving end of SubmitJob on the owner.
func (n *Node) HandleForwardJob(ctx context.Context, req JobRequest) (JobAck, error) {
	n.forwardsIn.Add(1)
	return n.opts.Local.RunJob(ctx, req)
}

// peerDied is the health tracker's death callback: count it, log it,
// and adopt the dead peer's handed-off jobs this node is next in line
// for.
func (n *Node) peerDied(id NodeID) {
	n.deaths.Add(1)
	if n.opts.Logf != nil {
		n.opts.Logf("cluster: peer %s declared dead (phi > %.1f)", id, n.opts.PhiThreshold)
	}
	n.adoptFrom(id)
}

// Stats snapshots the cluster counters; Peers is sorted by node ID.
func (n *Node) Stats() Stats {
	return Stats{
		Self:        n.opts.Self,
		Members:     n.ring.Size(),
		Replication: n.opts.ReplicationFactor,
		Peers:       n.health.snapshot(),

		HeartbeatsSent: n.heartbeatsSent.Load(),
		HeartbeatsRecv: n.heartbeatsRecv.Load(),
		Deaths:         n.deaths.Load(),
		Resurrections:  n.resurrections.Load(),

		ForwardsOut:     n.forwardsOut.Load(),
		ForwardsIn:      n.forwardsIn.Load(),
		ForwardRetries:  n.forwardRetries.Load(),
		Hedges:          n.hedges.Load(),
		ForwardFailures: n.forwardFailures.Load(),

		ReplicaChunksOut:  n.chunksOut.Load(),
		ReplicaChunksIn:   n.chunksIn.Load(),
		ReplicaPayloadsIn: n.payloadsIn.Load(),
		ReplicaResumes:    n.resumes.Load(),
		ReplicaRejects:    n.rejects.Load(),
		ReplicateFailures: n.replFailures.Load(),
		HandoffRecords:    n.handoffRecords.Load(),
		Adoptions:         n.adoptions.Load(),
		AdoptFailures:     n.adoptFailures.Load(),
	}
}
