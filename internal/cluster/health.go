package cluster

import (
	"sort"
	"sync"
	"time"
)

// PeerState is the health tracker's verdict on one peer.
type PeerState int

const (
	// PeerAlive: phi below threshold.
	PeerAlive PeerState = iota
	// PeerDead: phi crossed the threshold; the peer's keys have been
	// handed to the next replica. A later heartbeat resurrects it.
	PeerDead
)

// String returns the wire name of the state.
func (s PeerState) String() string {
	if s == PeerDead {
		return "dead"
	}
	return "alive"
}

// PeerHealth is one row of the health snapshot (/statsz and tests).
type PeerHealth struct {
	Node  NodeID    `json:"node"`
	State string    `json:"state"`
	Phi   float64   `json:"phi"`
	Seq   uint64    `json:"seq"`
	Last  time.Time `json:"last_heartbeat"`
}

// health tracks liveness for every peer: a phi-accrual detector fed by
// direct heartbeats and by gossiped sequence numbers, with edge-
// triggered death/resurrection callbacks. All methods are safe for
// concurrent use.
type health struct {
	threshold float64
	bootstrap time.Duration // assumed mean interval before history exists
	clock     Clock

	mu    sync.Mutex
	peers map[NodeID]*peerHealth

	onDeath func(NodeID)
	onAlive func(NodeID)
}

type peerHealth struct {
	det   *phiDetector
	seq   uint64 // highest sequence observed, directly or via gossip
	state PeerState
}

func newHealth(threshold float64, bootstrap time.Duration, clock Clock) *health {
	if threshold <= 0 {
		threshold = DefaultPhiThreshold
	}
	return &health{
		threshold: threshold,
		bootstrap: bootstrap,
		clock:     clock,
		peers:     make(map[NodeID]*peerHealth),
	}
}

// watch registers a peer, seeding its detector so silence from the very
// first moment still accrues suspicion.
func (h *health) watch(id NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.peers[id]; ok {
		return
	}
	p := &peerHealth{det: newPhiDetector(), state: PeerAlive}
	p.det.heartbeat(h.clock.Now())
	h.peers[id] = p
}

// observe records proof of life for id at sequence seq. Stale sequences
// (already seen) are ignored — gossip echoes must not look like fresh
// heartbeats, or a partitioned peer would be kept alive by its own old
// news bouncing around. Returns true when the observation resurrected a
// dead peer.
func (h *health) observe(id NodeID, seq uint64) bool {
	h.mu.Lock()
	p, ok := h.peers[id]
	if !ok || seq <= p.seq {
		h.mu.Unlock()
		return false
	}
	p.seq = seq
	p.det.heartbeat(h.clock.Now())
	resurrected := p.state == PeerDead
	if resurrected {
		p.state = PeerAlive
	}
	cb := h.onAlive
	h.mu.Unlock()
	if resurrected && cb != nil {
		cb(id)
	}
	return resurrected
}

// sweep re-evaluates phi for every peer and fires the death callback
// for each alive→dead edge. Called from the gossip loop.
func (h *health) sweep() {
	now := h.clock.Now()
	var died []NodeID
	h.mu.Lock()
	for id, p := range h.peers {
		if p.state == PeerAlive && p.det.phi(now, h.bootstrap) > h.threshold {
			p.state = PeerDead
			died = append(died, id)
		}
	}
	cb := h.onDeath
	h.mu.Unlock()
	if cb == nil {
		return
	}
	// Deterministic callback order regardless of map iteration.
	sort.Slice(died, func(i, j int) bool { return died[i] < died[j] })
	for _, id := range died {
		cb(id)
	}
}

// alive reports whether id is currently considered alive. Unknown peers
// are dead by definition.
func (h *health) alive(id NodeID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	return ok && p.state == PeerAlive
}

// seqs snapshots every peer's highest observed sequence — the gossip
// view piggybacked on outgoing heartbeats.
func (h *health) seqs() map[NodeID]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[NodeID]uint64, len(h.peers))
	for id, p := range h.peers {
		if p.seq > 0 {
			out[id] = p.seq
		}
	}
	return out
}

// snapshot returns per-peer health rows sorted by node ID — the order
// is part of the /statsz determinism contract.
func (h *health) snapshot() []PeerHealth {
	now := h.clock.Now()
	h.mu.Lock()
	out := make([]PeerHealth, 0, len(h.peers))
	for id, p := range h.peers {
		out = append(out, PeerHealth{
			Node:  id,
			State: p.state.String(),
			Phi:   p.det.phi(now, h.bootstrap),
			Seq:   p.seq,
			Last:  p.det.last,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
