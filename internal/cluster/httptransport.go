package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// HTTP paths the transport speaks and internal/server mounts. They live
// here so the two sides cannot drift.
const (
	GossipPath    = "/internal/gossip"
	ForwardPath   = "/internal/jobs"
	ReplicatePath = "/internal/replicate"
)

// HTTPTransport reaches peers over their HTTP base URLs — the
// production transport. Requests are plain JSON posts against the
// /internal/* endpoints internal/server mounts; any connection-level
// failure maps to ErrPeerUnreachable (retryable) and any 4xx response
// to ErrPeerRejected (definitive), so the retry policy in node.go works
// unchanged over HTTP. Safe for concurrent use.
type HTTPTransport struct {
	client *http.Client

	mu    sync.RWMutex
	peers map[NodeID]string // base URL, no trailing slash
}

// NewHTTPTransport builds a transport over peer base URLs
// ("node-b" -> "http://10.0.0.2:8080"). A nil client uses
// http.DefaultClient; per-attempt deadlines come from the caller's
// context, so the node's AttemptTimeout still governs.
func NewHTTPTransport(peers map[NodeID]string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = http.DefaultClient
	}
	cp := make(map[NodeID]string, len(peers))
	for id, base := range peers {
		for len(base) > 0 && base[len(base)-1] == '/' {
			base = base[:len(base)-1]
		}
		cp[id] = base
	}
	return &HTTPTransport{client: client, peers: cp}
}

// PeerURL returns the configured base URL for id.
func (t *HTTPTransport) PeerURL(id NodeID) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	base, ok := t.peers[id]
	return base, ok
}

// post sends one JSON request and decodes the JSON answer into out
// (when non-nil).
func (t *HTTPTransport) post(ctx context.Context, to NodeID, path string, in, out any) error {
	base, ok := t.PeerURL(to)
	if !ok {
		return fmt.Errorf("%w: no URL configured for %s", ErrPeerUnreachable, to)
	}
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, to, err)
	}
	defer func() { _ = resp.Body.Close() }() // nothing to do about a close error on a drained body
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("%w: %s: reading response: %v", ErrPeerUnreachable, to, err)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return fmt.Errorf("%w: %s: HTTP %d: %s", ErrPeerRejected, to, resp.StatusCode, trim(payload))
	default:
		return fmt.Errorf("%w: %s: HTTP %d: %s", ErrPeerUnreachable, to, resp.StatusCode, trim(payload))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("%w: %s: decoding response: %v", ErrPeerUnreachable, to, err)
	}
	return nil
}

func trim(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

func (t *HTTPTransport) Heartbeat(ctx context.Context, to NodeID, hb Heartbeat) error {
	return t.post(ctx, to, GossipPath, hb, nil)
}

func (t *HTTPTransport) ForwardJob(ctx context.Context, to NodeID, req JobRequest) (JobAck, error) {
	var ack JobAck
	err := t.post(ctx, to, ForwardPath, req, &ack)
	return ack, err
}

func (t *HTTPTransport) Replicate(ctx context.Context, to NodeID, chunk ReplicaChunk) (ReplicaAck, error) {
	var ack ReplicaAck
	err := t.post(ctx, to, ReplicatePath, chunk, &ack)
	return ack, err
}
