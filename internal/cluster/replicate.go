package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// JobRecord is the cluster envelope of one replicated job record: just
// enough for the cluster layer to decide who adopts it (the dataset
// names the replica set) without parsing the serving layer's payload.
type JobRecord struct {
	ID      string          `json:"id"`
	Dataset string          `json:"dataset"`
	Done    bool            `json:"done"`
	Payload json.RawMessage `json:"payload"`
}

// replicaBuf is one in-flight payload being assembled from chunks.
type replicaBuf struct {
	data  []byte
	total int64
}

func asmKey(origin NodeID, kind, key string) string {
	return string(origin) + "|" + kind + "|" + key
}

// HandleReplicate is the receiving end of the replication stream: append
// the chunk if its offset matches the assembly high-water mark, answer
// with the mark otherwise (the resume contract), and on the final chunk
// verify the payload before handing it over — spill payloads must hash
// back to their key, job records must parse as a JobRecord envelope.
// Verified spill payloads go to Local.StoreReplica; verified job
// records additionally enter the handoff table for failover.
func (n *Node) HandleReplicate(chunk ReplicaChunk) (ReplicaAck, error) {
	n.chunksIn.Add(1)
	if chunk.Kind != ReplicaSpill && chunk.Kind != ReplicaJob {
		n.rejects.Add(1)
		return ReplicaAck{}, fmt.Errorf("%w: unknown replica kind %q", ErrPeerRejected, chunk.Kind)
	}
	if chunk.Total <= 0 || int64(len(chunk.Data)) > chunk.Total {
		n.rejects.Add(1)
		return ReplicaAck{}, fmt.Errorf("%w: malformed replica chunk", ErrPeerRejected)
	}
	k := asmKey(chunk.Origin, chunk.Kind, chunk.Key)

	n.asmMu.Lock()
	buf := n.assembly[k]
	if buf == nil {
		buf = &replicaBuf{total: chunk.Total}
		n.assembly[k] = buf
	}
	if buf.total != chunk.Total {
		// The sender restarted with different content; start over.
		buf.data = buf.data[:0]
		buf.total = chunk.Total
	}
	have := int64(len(buf.data))
	if chunk.Offset != have {
		// Out-of-order or duplicate chunk: report the mark so the sender
		// resumes from where this side actually is.
		n.asmMu.Unlock()
		n.resumes.Add(1)
		return ReplicaAck{Have: have, Resume: true}, nil
	}
	buf.data = append(buf.data, chunk.Data...)
	have = int64(len(buf.data))
	if have < buf.total {
		n.asmMu.Unlock()
		return ReplicaAck{Have: have}, nil
	}
	// Complete: detach the buffer before verification so a concurrent
	// re-send starts a fresh assembly.
	data := buf.data
	delete(n.assembly, k)
	n.asmMu.Unlock()

	if have > buf.total {
		n.rejects.Add(1)
		return ReplicaAck{}, fmt.Errorf("%w: replica payload overran its declared size", ErrPeerRejected)
	}
	switch chunk.Kind {
	case ReplicaSpill:
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != chunk.Key {
			n.rejects.Add(1)
			return ReplicaAck{}, fmt.Errorf("%w: spill replica %s failed checksum verification", ErrPeerRejected, chunk.Key)
		}
	case ReplicaJob:
		var rec JobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" || rec.Dataset == "" {
			n.rejects.Add(1)
			return ReplicaAck{}, fmt.Errorf("%w: malformed job record replica", ErrPeerRejected)
		}
		n.hoMu.Lock()
		byID := n.handoff[chunk.Origin]
		if byID == nil {
			byID = make(map[string]JobRecord)
			n.handoff[chunk.Origin] = byID
		}
		if _, seen := byID[rec.ID]; !seen {
			n.handoffRecords.Add(1)
		}
		byID[rec.ID] = rec // later records (done) supersede earlier (submitted)
		n.hoMu.Unlock()
	}
	if err := n.opts.Local.StoreReplica(chunk.Origin, chunk.Kind, chunk.Key, data); err != nil {
		return ReplicaAck{}, fmt.Errorf("%w: %v", ErrPeerRejected, err)
	}
	n.payloadsIn.Add(1)
	return ReplicaAck{Have: have}, nil
}

// replicateTo streams one payload to a peer in ChunkSize slices,
// resuming from the receiver's high-water mark on offset mismatch and
// retrying transient transport failures with jittered backoff.
func (n *Node) replicateTo(ctx context.Context, to NodeID, kind, key string, data []byte) error {
	total := int64(len(data))
	var off int64
	attempt := 0
	for off < total {
		end := off + int64(n.opts.ChunkSize)
		if end > total {
			end = total
		}
		actx, cancel := context.WithTimeout(ctx, n.opts.AttemptTimeout)
		ack, err := n.opts.Transport.Replicate(actx, to, ReplicaChunk{
			Origin: n.opts.Self,
			Kind:   kind,
			Key:    key,
			Offset: off,
			Total:  total,
			Data:   data[off:end],
		})
		cancel()
		n.chunksOut.Add(1)
		switch {
		case err == nil && ack.Resume:
			// The receiver holds a different prefix; resume from its mark.
			off = ack.Have
			attempt = 0
		case err == nil:
			off = ack.Have
			attempt = 0
		default:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			attempt++
			if attempt >= n.opts.MaxAttempts {
				return fmt.Errorf("cluster: replicating %s/%s to %s: %w", kind, key, to, err)
			}
			select {
			case <-n.clock.After(n.jittered(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// replicaPeers returns the owners of key other than self, in priority
// order.
func (n *Node) replicaPeers(key string) []NodeID {
	owners := n.Owners(key)
	out := owners[:0:0]
	for _, id := range owners {
		if id != n.opts.Self {
			out = append(out, id)
		}
	}
	return out
}

// ReplicateSpill pushes a dataset's canonicalized bytes to the other
// owners of its content hash. Failures are counted, not propagated —
// replication is an availability optimization layered on a node that is
// already durable locally; the anti-entropy pass of a later PR can
// re-send.
func (n *Node) ReplicateSpill(ctx context.Context, hash string, data []byte) {
	for _, to := range n.replicaPeers(hash) {
		if err := n.replicateTo(ctx, to, ReplicaSpill, hash, data); err != nil {
			n.replFailures.Add(1)
		}
	}
}

// ReplicateJobRecord pushes one job record to the other owners of its
// dataset, so a replica can adopt the job if this node dies. Called on
// submission accept (Done=false) and again at completion (Done=true,
// payload now carrying the re-mine recipe).
func (n *Node) ReplicateJobRecord(ctx context.Context, rec JobRecord) {
	data, err := json.Marshal(rec)
	if err != nil {
		n.replFailures.Add(1)
		return
	}
	for _, to := range n.replicaPeers(rec.Dataset) {
		if err := n.replicateTo(ctx, to, ReplicaJob, rec.ID, data); err != nil {
			n.replFailures.Add(1)
		}
	}
}

// adoptFrom re-homes a dead peer's handed-off job records. For each
// record, the adopter is the highest-priority live owner of the
// record's dataset — exactly one live node elects itself, so a job is
// never adopted twice while suspicions agree. Records stay in the
// handoff table until adopted (the origin may resurrect; adoption is
// idempotent through Local.AdoptJob's dedup by job ID).
func (n *Node) adoptFrom(dead NodeID) {
	n.hoMu.Lock()
	byID := n.handoff[dead]
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	recs := make([]JobRecord, 0, len(ids))
	for _, id := range ids {
		recs = append(recs, byID[id])
	}
	n.hoMu.Unlock()

	// Deterministic adoption order.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].ID < recs[j-1].ID; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	for _, rec := range recs {
		if n.electedAdopter(rec.Dataset, dead) != n.opts.Self {
			continue
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			n.adoptFailures.Add(1)
			continue
		}
		if err := n.opts.Local.AdoptJob(dead, payload); err != nil {
			n.adoptFailures.Add(1)
			continue
		}
		n.adoptions.Add(1)
		if n.opts.Logf != nil {
			n.opts.Logf("cluster: adopted job %s (dataset %s) from dead peer %s", rec.ID, rec.Dataset, dead)
		}
	}
}

// electedAdopter returns the highest-priority live owner of key,
// treating dead as dead regardless of the tracker (the caller just
// declared it). Returns "" when no owner is live.
func (n *Node) electedAdopter(key string, dead NodeID) NodeID {
	for _, id := range n.Owners(key) {
		if id == dead {
			continue
		}
		if id == n.opts.Self || n.health.alive(id) {
			return id
		}
	}
	return ""
}
