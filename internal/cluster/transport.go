package cluster

import (
	"context"
	"errors"
	"time"
)

// Transport errors every implementation maps onto, so the retry policy
// in node.go is implementation-agnostic.
var (
	// ErrPeerUnreachable marks a send that never reached the peer
	// (connection refused, killed node, partition). Retryable.
	ErrPeerUnreachable = errors.New("cluster: peer unreachable")
	// ErrPeerRejected marks a send the peer received and refused
	// (admission, capacity). Not retryable on the same peer.
	ErrPeerRejected = errors.New("cluster: peer rejected request")
)

// Heartbeat is one gossip message: the sender's liveness claim plus its
// view of every peer's latest sequence number, so liveness information
// travels over any reachable path, not just direct links.
type Heartbeat struct {
	From NodeID `json:"from"`
	// Seq increments on every heartbeat the sender emits; a receiver
	// treats a higher Seq as proof of life at receive time.
	Seq uint64 `json:"seq"`
	// View maps peer IDs to the highest Seq the sender has observed for
	// them (directly or via gossip). Indirect evidence keeps a node
	// alive through an asymmetric partition.
	View map[NodeID]uint64 `json:"view,omitempty"`
}

// JobRequest is a forwarded job submission. The forwarder mints the job
// ID, so retries and hedged attempts are idempotent: every replica that
// ends up with the request installs the same job under the same ID.
type JobRequest struct {
	// ID is the cluster-wide job identifier, minted by the forwarder.
	ID string `json:"id"`
	// SpecJSON is the jobs.Spec, serialized by the serving layer. The
	// cluster layer never looks inside — placement uses Dataset below.
	SpecJSON []byte `json:"spec"`
	// Dataset is the content hash the job mines; placement key.
	Dataset string `json:"dataset"`
	// Tenant propagates admission identity to the owner.
	Tenant string `json:"tenant,omitempty"`
	// CSV carries the raw upload when the job was submitted with an
	// inline body; the owner registers it before mining. Empty when the
	// dataset is expected to be resident (or replicated) on the owner.
	CSV []byte `json:"csv,omitempty"`
}

// JobAck acknowledges a forwarded job.
type JobAck struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Node  NodeID `json:"node"`
}

// Replica payload kinds.
const (
	// ReplicaSpill is a checksummed dataset payload (canonicalized CSV
	// bytes); Key is the content hash, which doubles as the checksum.
	ReplicaSpill = "spill"
	// ReplicaJob is a WAL-style job record (JSON); Key is the job ID.
	// Job records are tiny and always fit one chunk.
	ReplicaJob = "job"
)

// ReplicaChunk is one resumable slice of a replicated payload. The
// sender streams consecutive chunks; the receiver assembles them keyed
// by (Origin, Kind, Key) and verifies the content hash of the complete
// payload before accepting it. A chunk whose Offset disagrees with what
// the receiver already holds is answered with the receiver's high-water
// mark so the sender can resume mid-payload instead of starting over.
type ReplicaChunk struct {
	Origin NodeID `json:"origin"`
	Kind   string `json:"kind"`
	// Key identifies the payload: the dataset content hash for spill
	// payloads (verify-on-receive re-hashes against it), the job ID for
	// job records.
	Key    string `json:"key"`
	Offset int64  `json:"offset"`
	Total  int64  `json:"total"`
	Data   []byte `json:"data"`
}

// ReplicaAck reports the receiver's durable high-water mark for the
// payload. Have == Total means the payload was verified and accepted.
type ReplicaAck struct {
	Have int64 `json:"have"`
	// Resume is set when the chunk was rejected for an offset mismatch;
	// the sender should re-send from Have.
	Resume bool `json:"resume,omitempty"`
}

// Transport carries the three cluster verbs to a peer. Implementations
// must be safe for concurrent use and must honor ctx cancellation and
// deadlines — the per-attempt timeout in node.go depends on it.
type Transport interface {
	// Heartbeat delivers a gossip heartbeat. Fire-and-forget semantics:
	// an error only means this path is down right now.
	Heartbeat(ctx context.Context, to NodeID, hb Heartbeat) error
	// ForwardJob submits a job on the peer.
	ForwardJob(ctx context.Context, to NodeID, req JobRequest) (JobAck, error)
	// Replicate delivers one payload chunk.
	Replicate(ctx context.Context, to NodeID, chunk ReplicaChunk) (ReplicaAck, error)
}

// Handler is the receiving half a node exposes to its transport: the
// in-memory transport calls it directly, the HTTP transport's server
// side (internal/server) decodes requests and calls it.
type Handler interface {
	HandleHeartbeat(hb Heartbeat)
	HandleForwardJob(ctx context.Context, req JobRequest) (JobAck, error)
	HandleReplicate(chunk ReplicaChunk) (ReplicaAck, error)
}

// Local is what the cluster layer needs from the node it runs inside —
// implemented by internal/server in production and by test fakes in
// this package's harnesses. The cluster layer owns placement, health,
// retry and assembly; Local owns everything that touches the job engine
// or the registry.
type Local interface {
	// RunJob executes or enqueues req on this node (the terminal hop of
	// a forward). The implementation must be idempotent in req.ID.
	RunJob(ctx context.Context, req JobRequest) (JobAck, error)
	// StoreReplica accepts a complete, hash-verified replica payload.
	StoreReplica(origin NodeID, kind, key string, data []byte) error
	// AdoptJob re-homes a dead peer's job record on this node: install
	// the record and re-mine through the rehydrate path as needed.
	AdoptJob(origin NodeID, record []byte) error
}

// Clock abstracts time for deterministic tests: Now for timestamps and
// After for backoff/hedge sleeps.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
