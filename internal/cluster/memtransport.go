package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// MemNetwork connects in-process nodes for tests and the chaos harness:
// every transport verb is delivered by direct handler call, through a
// seeded fault layer that can kill nodes (every message to or from them
// is dropped), partition the membership into groups that cannot reach
// each other, slow-walk links with added latency, and drop a random
// fraction of messages. The same seed produces the same drop schedule,
// so a failing chaos run reproduces exactly. All methods are safe for
// concurrent use.
type MemNetwork struct {
	mu       sync.Mutex
	handlers map[NodeID]Handler
	killed   map[NodeID]bool
	group    map[NodeID]int // partition group; absent = group 0
	slow     map[NodeID]time.Duration
	dropRate float64
	rng      *rand.Rand

	delivered int64
	dropped   int64
}

// NewMemNetwork builds an empty network with a seeded fault schedule.
func NewMemNetwork(seed int64) *MemNetwork {
	return &MemNetwork{
		handlers: make(map[NodeID]Handler),
		killed:   make(map[NodeID]bool),
		group:    make(map[NodeID]int),
		slow:     make(map[NodeID]time.Duration),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Attach registers a node's handler and returns the Transport its peers
// use to reach it — each node gets a Transport bound to its own ID so
// the network knows who is sending.
func (m *MemNetwork) Attach(id NodeID, h Handler) Transport {
	m.mu.Lock()
	m.handlers[id] = h
	m.mu.Unlock()
	return &memTransport{net: m, from: id}
}

// Transport returns the sending half for id without registering a
// handler: handlers are resolved at delivery time, so a node can be
// constructed with its transport first and Attach its handler after.
func (m *MemNetwork) Transport(id NodeID) Transport {
	return &memTransport{net: m, from: id}
}

// Kill drops every message to and from id until Revive.
func (m *MemNetwork) Kill(id NodeID) {
	m.mu.Lock()
	m.killed[id] = true
	m.mu.Unlock()
}

// Revive undoes Kill.
func (m *MemNetwork) Revive(id NodeID) {
	m.mu.Lock()
	delete(m.killed, id)
	m.mu.Unlock()
}

// Partition assigns nodes to groups; messages cross group boundaries
// only to be dropped. Nodes not mentioned stay in group 0. Heal with
// HealPartition.
func (m *MemNetwork) Partition(groups ...[]NodeID) {
	m.mu.Lock()
	m.group = make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			m.group[id] = gi
		}
	}
	m.mu.Unlock()
}

// HealPartition reunites all groups.
func (m *MemNetwork) HealPartition() {
	m.mu.Lock()
	m.group = make(map[NodeID]int)
	m.mu.Unlock()
}

// SlowWalk adds latency to every message to or from id (0 clears it).
func (m *MemNetwork) SlowWalk(id NodeID, d time.Duration) {
	m.mu.Lock()
	if d <= 0 {
		delete(m.slow, id)
	} else {
		m.slow[id] = d
	}
	m.mu.Unlock()
}

// DropRate makes the network drop a random fraction of messages
// (seeded, deterministic given the message order).
func (m *MemNetwork) DropRate(p float64) {
	m.mu.Lock()
	m.dropRate = p
	m.mu.Unlock()
}

// Delivered and Dropped report message counts.
func (m *MemNetwork) Delivered() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.delivered }
func (m *MemNetwork) Dropped() int64   { m.mu.Lock(); defer m.mu.Unlock(); return m.dropped }

// route decides the fate of one message: the target handler plus added
// latency, or an unreachable error.
func (m *MemNetwork) route(from, to NodeID) (Handler, time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handlers[to]
	switch {
	case !ok, m.killed[from], m.killed[to], m.group[from] != m.group[to]:
		m.dropped++
		return nil, 0, fmt.Errorf("%w: %s -> %s", ErrPeerUnreachable, from, to)
	case m.dropRate > 0 && m.rng.Float64() < m.dropRate:
		m.dropped++
		return nil, 0, fmt.Errorf("%w: %s -> %s (dropped)", ErrPeerUnreachable, from, to)
	}
	m.delivered++
	return h, m.slow[from] + m.slow[to], nil
}

// memTransport is the per-node sending half.
type memTransport struct {
	net  *MemNetwork
	from NodeID
}

// deliver applies routing and latency, honoring ctx while "on the wire".
func (t *memTransport) deliver(ctx context.Context, to NodeID) (Handler, error) {
	h, delay, err := t.net.route(t.from, to)
	if err != nil {
		return nil, err
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %s -> %s: %v", ErrPeerUnreachable, t.from, to, ctx.Err())
		}
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("%w: %s -> %s: %v", ErrPeerUnreachable, t.from, to, ctx.Err())
	}
	return h, nil
}

func (t *memTransport) Heartbeat(ctx context.Context, to NodeID, hb Heartbeat) error {
	h, err := t.deliver(ctx, to)
	if err != nil {
		return err
	}
	h.HandleHeartbeat(hb)
	return nil
}

func (t *memTransport) ForwardJob(ctx context.Context, to NodeID, req JobRequest) (JobAck, error) {
	h, err := t.deliver(ctx, to)
	if err != nil {
		return JobAck{}, err
	}
	return h.HandleForwardJob(ctx, req)
}

func (t *memTransport) Replicate(ctx context.Context, to NodeID, chunk ReplicaChunk) (ReplicaAck, error) {
	h, err := t.deliver(ctx, to)
	if err != nil {
		return ReplicaAck{}, err
	}
	return h.HandleReplicate(chunk)
}
