package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock. After returns an
// already-ready channel for non-positive durations and otherwise a
// channel fired by Advance.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	var fire []chan time.Time
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			fire = append(fire, w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	now := c.now
	c.mu.Unlock()
	for _, ch := range fire {
		ch <- now
	}
}

func TestPhiGrowsWithSilence(t *testing.T) {
	d := newPhiDetector()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// Steady 1s heartbeats.
	for i := 0; i < 10; i++ {
		d.heartbeat(base.Add(time.Duration(i) * time.Second))
	}
	last := base.Add(9 * time.Second)
	at1 := d.phi(last.Add(1*time.Second), time.Second)
	at5 := d.phi(last.Add(5*time.Second), time.Second)
	at30 := d.phi(last.Add(30*time.Second), time.Second)
	if !(at1 < at5 && at5 < at30) {
		t.Fatalf("phi not monotone in silence: %v %v %v", at1, at5, at30)
	}
	// One mean interval of silence is ordinary (phi well under 1);
	// thirty are damning (phi far above the default threshold).
	if at1 > 1 {
		t.Errorf("phi after one interval = %v, want < 1", at1)
	}
	if at30 < DefaultPhiThreshold {
		t.Errorf("phi after 30 intervals = %v, want > %v", at30, DefaultPhiThreshold)
	}
}

func TestPhiAdaptsToCadence(t *testing.T) {
	slow, fast := newPhiDetector(), newPhiDetector()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		slow.heartbeat(base.Add(time.Duration(i) * 10 * time.Second))
		fast.heartbeat(base.Add(time.Duration(i) * time.Second))
	}
	// The same 20s of silence is mild for a 10s cadence, alarming for 1s.
	gap := 20 * time.Second
	phiSlow := slow.phi(base.Add(90*time.Second+gap), time.Second)
	phiFast := fast.phi(base.Add(9*time.Second+gap), time.Second)
	if phiSlow >= phiFast {
		t.Fatalf("phi ignores cadence: slow=%v fast=%v", phiSlow, phiFast)
	}
}

func TestHealthDeathAndResurrection(t *testing.T) {
	clock := newFakeClock()
	h := newHealth(DefaultPhiThreshold, time.Second, clock)
	var deaths, alive []NodeID
	h.onDeath = func(id NodeID) { deaths = append(deaths, id) }
	h.onAlive = func(id NodeID) { alive = append(alive, id) }
	h.watch("b")
	h.watch("c")

	// Regular heartbeats keep both alive.
	for i := 0; i < 10; i++ {
		clock.Advance(time.Second)
		h.observe("b", uint64(i+1))
		h.observe("c", uint64(i+1))
		h.sweep()
	}
	if len(deaths) != 0 {
		t.Fatalf("deaths with steady heartbeats: %v", deaths)
	}

	// c goes silent; b keeps talking.
	for i := 10; i < 60; i++ {
		clock.Advance(time.Second)
		h.observe("b", uint64(i+1))
		h.sweep()
	}
	if len(deaths) != 1 || deaths[0] != "c" {
		t.Fatalf("deaths = %v, want [c]", deaths)
	}
	if h.alive("c") || !h.alive("b") {
		t.Fatalf("alive(c)=%v alive(b)=%v", h.alive("c"), h.alive("b"))
	}

	// A fresh sequence resurrects c; a stale one must not.
	if h.observe("c", 5) {
		t.Fatalf("stale sequence resurrected the peer")
	}
	if !h.observe("c", 100) {
		t.Fatalf("fresh sequence did not resurrect the peer")
	}
	if len(alive) != 1 || alive[0] != "c" {
		t.Fatalf("onAlive calls = %v, want [c]", alive)
	}
	if !h.alive("c") {
		t.Fatalf("c still dead after resurrection")
	}
}

func TestHealthSnapshotSorted(t *testing.T) {
	clock := newFakeClock()
	h := newHealth(0, time.Second, clock)
	for _, id := range []NodeID{"z", "a", "m"} {
		h.watch(id)
	}
	snap := h.snapshot()
	if len(snap) != 3 || snap[0].Node != "a" || snap[1].Node != "m" || snap[2].Node != "z" {
		t.Fatalf("snapshot not sorted by node: %+v", snap)
	}
}
