// Package cluster is the transport-agnostic placement + replication
// layer between internal/server and internal/registry: it decides which
// peers own a content-addressed dataset, keeps track of which peers are
// alive, forwards work to owners, and replicates the durable artifacts
// (checksummed spill payloads and WAL-style job records) so a node death
// degrades to a re-mine on a replica instead of data loss.
//
// The layer is built from four orthogonal pieces:
//
//   - Ring (ring.go): a consistent-hash ring with virtual nodes and a
//     rendezvous tiebreak. Owners(key, r) returns the r distinct nodes
//     placed after the key's point on the ring — the replica set, in
//     priority order. Adding or removing a node moves only the keys
//     adjacent to its virtual points.
//
//   - Health (phi.go, health.go): a phi-accrual failure detector per
//     peer fed by a heartbeat gossip loop. Heartbeats piggyback the
//     sender's view of every peer's latest sequence number, so one
//     reachable path is enough to keep a node alive; suspicion is a
//     continuous phi value, and a peer is declared dead only when phi
//     crosses the configured threshold.
//
//   - Transport (transport.go): the three verbs the layer needs —
//     Heartbeat, ForwardJob, Replicate — behind an interface. The
//     in-memory implementation (memtransport.go) connects nodes inside
//     one process and injects seeded faults (kill, partition, slow) for
//     the chaos harness; the HTTP implementation (httptransport.go)
//     speaks to the /internal/* endpoints internal/server mounts.
//
//   - Node (node.go, replicate.go, failover.go): ties the pieces
//     together. Forwarding retries with per-attempt timeouts and capped
//     exponential backoff with jitter, hedging to the next replica when
//     an owner is unreachable. Replication streams byte payloads in
//     resumable chunks and verifies the content hash on receive. When a
//     peer is declared dead, the highest-priority live replica adopts
//     the dead node's handed-off job records and re-mines them through
//     the job engine's existing rehydrate path.
//
// Everything above the Transport interface is deterministic given a
// seeded transport and an injected clock, which is what makes the chaos
// tests (chaos_test.go) reproducible: the same seed produces the same
// kill/partition/slow schedule, the same suspicion timeline, and the
// same failover decisions.
package cluster
