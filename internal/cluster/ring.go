package cluster

import (
	"sort"
	"sync"
)

// NodeID names a cluster member. IDs are operator-chosen strings
// (-node-id); placement depends only on the ID, so a restarted node
// with the same ID owns the same keys.
type NodeID string

// DefaultVirtualNodes is the number of points each member contributes
// to the ring. More points smooth the load split between members at the
// cost of a larger sorted array; 64 keeps the imbalance under a few
// percent for small clusters while a full lookup stays one binary
// search.
const DefaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a member.
type ringPoint struct {
	pos  uint64
	node NodeID
}

// Ring is a consistent-hash ring with virtual nodes. Owners(key, r)
// walks clockwise from the key's position collecting distinct members —
// the replica set in priority order. Ties (two virtual points hashing
// to the same position, possible with adversarial IDs) are broken by
// rendezvous hashing: the member with the higher hash of key+ID wins,
// so the ordering never depends on map iteration or insertion order.
// All methods are safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []ringPoint // sorted by pos
	members map[NodeID]bool
}

// NewRing builds an empty ring with vnodes virtual points per member
// (DefaultVirtualNodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[NodeID]bool)}
}

// fnv64 is FNV-1a over s, inlined for the lookup hot path (hash/fnv
// allocates a hasher per call).
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= prime64
	}
	return x
}

// mix64 is a splitmix-style finalizer: FNV-1a's upper bits are weakly
// mixed for short inputs, and ring positions compare most-significant
// bit first, so every position goes through this before landing on the
// ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointPos hashes virtual point i of node id onto the ring.
func pointPos(id NodeID, i int) uint64 {
	return mix64(fnv64(string(id)) ^ (uint64(i) + 0x9e3779b97f4a7c15))
}

// Add inserts a member's virtual points. Adding a present member is a
// no-op.
func (r *Ring) Add(id NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[id] {
		return
	}
	r.members[id] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{pos: pointPos(id, i), node: id})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// Equal positions: rendezvous order on the bare ID keeps the
		// sorted array itself deterministic; per-key tiebreak happens in
		// Owners.
		return r.points[a].node < r.points[b].node
	})
}

// Remove drops a member and its virtual points. Removing an absent
// member is a no-op.
func (r *Ring) Remove(id NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member set, sorted.
func (r *Ring) Members() []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeID, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owners returns up to n distinct members for key, walking clockwise
// from the key's ring position. The first element is the primary owner;
// the rest are the replicas in failover priority order. Fewer than n
// members yields all of them. An empty ring yields nil.
//
// When several virtual points share the key's successor position (a
// hash tie), the winner among the tied members is chosen by rendezvous
// hashing — highest fnv64(key + "\x00" + member) first — so the answer
// is a pure function of (key, member set), independent of insertion
// order.
func (r *Ring) Owners(key string, n int) []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	pos := mix64(fnv64(key))
	// First point at or after pos, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]NodeID, 0, n)
	contains := func(id NodeID) bool { // n is tiny (the replication factor)
		for _, have := range out {
			if have == id {
				return true
			}
		}
		return false
	}
	for scanned := 0; scanned < len(r.points) && len(out) < n; {
		p := r.points[(i+scanned)%len(r.points)]
		// Collect the run of points sharing this position and resolve the
		// tie by rendezvous before admitting any of them.
		run := []NodeID{p.node}
		for scanned+len(run) < len(r.points) {
			q := r.points[(i+scanned+len(run))%len(r.points)]
			if q.pos != p.pos {
				break
			}
			run = append(run, q.node)
		}
		if len(run) > 1 {
			sort.Slice(run, func(a, b int) bool {
				return rendezvous(key, run[a]) > rendezvous(key, run[b])
			})
		}
		for _, id := range run {
			if !contains(id) {
				out = append(out, id)
				if len(out) == n {
					break
				}
			}
		}
		scanned += len(run)
	}
	return out
}

// rendezvous scores member id for key; higher wins.
func rendezvous(key string, id NodeID) uint64 {
	return fnv64(key + "\x00" + string(id))
}

// Primary returns the first owner for key, or "" on an empty ring.
func (r *Ring) Primary(key string) NodeID {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}
