package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// fakeLocal is a recording Local implementation, idempotent in job ID
// as the Local contract requires.
type fakeLocal struct {
	mu       sync.Mutex
	jobs     []JobRequest
	jobIDs   map[string]bool
	replicas map[string][]byte // kind|key -> data
	adopted  []JobRecord
	runErr   error
}

func newFakeLocal() *fakeLocal {
	return &fakeLocal{jobIDs: make(map[string]bool), replicas: make(map[string][]byte)}
}

func (f *fakeLocal) RunJob(_ context.Context, req JobRequest) (JobAck, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.runErr != nil {
		return JobAck{}, f.runErr
	}
	if !f.jobIDs[req.ID] {
		f.jobIDs[req.ID] = true
		f.jobs = append(f.jobs, req)
	}
	return JobAck{ID: req.ID, State: "queued"}, nil
}

func (f *fakeLocal) StoreReplica(_ NodeID, kind, key string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replicas[kind+"|"+key] = append([]byte(nil), data...)
	return nil
}

func (f *fakeLocal) AdoptJob(_ NodeID, record []byte) error {
	var rec JobRecord
	if err := json.Unmarshal(record, &rec); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.adopted = append(f.adopted, rec)
	return nil
}

func (f *fakeLocal) jobCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.jobs)
}

func (f *fakeLocal) adoptedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.adopted)
}

// testCluster wires n nodes over one MemNetwork with fast, test-sized
// timeouts. Gossip loops stay off; tests drive Tick themselves.
func testCluster(t *testing.T, seed int64, ids ...NodeID) (*MemNetwork, map[NodeID]*Node, map[NodeID]*fakeLocal) {
	t.Helper()
	net := NewMemNetwork(seed)
	nodes := make(map[NodeID]*Node, len(ids))
	locals := make(map[NodeID]*fakeLocal, len(ids))
	for _, id := range ids {
		peers := make([]NodeID, 0, len(ids)-1)
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		local := newFakeLocal()
		node, err := NewNode(Options{
			Self:              id,
			Peers:             peers,
			ReplicationFactor: 2,
			AttemptTimeout:    200 * time.Millisecond,
			MaxAttempts:       2,
			BackoffBase:       time.Millisecond,
			BackoffCap:        4 * time.Millisecond,
			HedgeAfter:        20 * time.Millisecond,
			ChunkSize:         16,
			Transport:         net.Transport(id),
			Local:             local,
			Seed:              seed + 1,
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		net.Attach(id, node)
		nodes[id] = node
		locals[id] = local
	}
	return net, nodes, locals
}

// ownerOf returns a key whose primary owner is want, probing numbered
// keys — placement is deterministic, so the probe is too.
func ownerOf(t *testing.T, n *Node, want NodeID) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("synthetic-hash-%d", i)
		if n.Owners(k)[0] == want {
			return k
		}
	}
	t.Fatalf("no key with primary %s in 10000 probes", want)
	return ""
}

// foreignKey returns a key whose replica set excludes n entirely.
func foreignKey(t *testing.T, n *Node) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("synthetic-hash-%d", i)
		if !n.IsOwner(k) {
			return k
		}
	}
	t.Fatalf("no key excluding %s in 10000 probes", n.Self())
	return ""
}

func TestSubmitJobRunsLocallyWhenOwner(t *testing.T) {
	_, nodes, locals := testCluster(t, 1, "a", "b", "c")
	n := nodes["a"]
	key := ownerOf(t, n, "a")
	ack, err := n.SubmitJob(context.Background(), JobRequest{ID: "j1", Dataset: key})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if ack.ID != "j1" || locals["a"].jobCount() != 1 {
		t.Fatalf("job did not run locally: ack=%+v local=%d", ack, locals["a"].jobCount())
	}
	if n.Stats().ForwardsOut != 0 {
		t.Fatalf("local submit counted as forward")
	}
}

func TestSubmitJobForwardsToOwner(t *testing.T) {
	_, nodes, locals := testCluster(t, 2, "a", "b", "c")
	n := nodes["a"]
	key := foreignKey(t, n)
	owners := n.Owners(key)
	ack, err := n.SubmitJob(context.Background(), JobRequest{ID: "j2", Dataset: key})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if ack.ID != "j2" {
		t.Fatalf("ack = %+v", ack)
	}
	ran := 0
	for _, id := range owners {
		ran += locals[id].jobCount()
	}
	if ran != 1 {
		t.Fatalf("job ran on %d owners, want exactly 1", ran)
	}
	if locals["a"].jobCount() != 0 {
		t.Fatalf("forwarder ran the job itself")
	}
	if nodes["a"].Stats().ForwardsOut != 1 {
		t.Fatalf("forward not counted: %+v", nodes["a"].Stats())
	}
}

func TestForwardFailsOverToReplicaWhenPrimaryKilled(t *testing.T) {
	net, nodes, locals := testCluster(t, 3, "a", "b", "c")
	n := nodes["a"]
	key := foreignKey(t, n)
	owners := n.Owners(key)
	net.Kill(owners[0])
	ack, err := n.SubmitJob(context.Background(), JobRequest{ID: "j3", Dataset: key})
	if err != nil {
		t.Fatalf("SubmitJob with dead primary: %v", err)
	}
	if ack.ID != "j3" {
		t.Fatalf("ack = %+v", ack)
	}
	if locals[owners[1]].jobCount() != 1 {
		t.Fatalf("replica %s did not run the failed-over job", owners[1])
	}
	st := n.Stats()
	if st.ForwardRetries == 0 && st.Hedges == 0 {
		t.Fatalf("failover happened without retries or hedges: %+v", st)
	}
}

func TestForwardHedgesToReplicaOnSlowPrimary(t *testing.T) {
	net, nodes, locals := testCluster(t, 11, "a", "b", "c")
	n := nodes["a"]
	key := foreignKey(t, n)
	owners := n.Owners(key)
	// Primary answers, but far slower than HedgeAfter (20ms): the hedge
	// to the replica must win the race.
	net.SlowWalk(owners[0], 150*time.Millisecond)
	ack, err := n.SubmitJob(context.Background(), JobRequest{ID: "j-slow", Dataset: key})
	if err != nil {
		t.Fatalf("SubmitJob with slow primary: %v", err)
	}
	if ack.ID != "j-slow" {
		t.Fatalf("ack = %+v", ack)
	}
	if n.Stats().Hedges == 0 {
		t.Fatalf("slow primary did not trigger a hedge: %+v", n.Stats())
	}
	if locals[owners[1]].jobCount() != 1 {
		t.Fatalf("hedged replica did not run the job")
	}
}

func TestForwardRejectionIsDefinitive(t *testing.T) {
	_, nodes, locals := testCluster(t, 4, "a", "b", "c")
	n := nodes["a"]
	key := foreignKey(t, n)
	owners := n.Owners(key)
	locals[owners[0]].runErr = fmt.Errorf("%w: tenant over quota", ErrPeerRejected)
	_, err := n.SubmitJob(context.Background(), JobRequest{ID: "j4", Dataset: key})
	if !errors.Is(err, ErrPeerRejected) {
		t.Fatalf("err = %v, want ErrPeerRejected", err)
	}
	// The rejection must not be retried onto the replica: a tenant's 429
	// must not become a cluster-wide retry storm.
	if locals[owners[1]].jobCount() != 0 {
		t.Fatalf("rejected job was hedged onto the replica")
	}
	if st := n.Stats(); st.ForwardRetries != 0 {
		t.Fatalf("rejection was retried: %+v", st)
	}
}

func TestReplicateSpillChunkedAndVerified(t *testing.T) {
	_, nodes, locals := testCluster(t, 5, "a", "b", "c")
	n := nodes["a"]
	data := []byte("col1,col2\n1,2\n3,4\n5,6\n7,8\n9,10\n") // several 16-byte chunks
	key := sha256Hex(data)
	n.ReplicateSpill(context.Background(), key, data)
	stored := 0
	for id, l := range locals {
		if id == "a" {
			continue
		}
		l.mu.Lock()
		if got, ok := l.replicas[ReplicaSpill+"|"+key]; ok {
			stored++
			if string(got) != string(data) {
				t.Fatalf("replica on %s corrupted: %q", id, got)
			}
		}
		l.mu.Unlock()
	}
	if want := len(n.replicaPeers(key)); stored != want {
		t.Fatalf("spill stored on %d peers, want %d", stored, want)
	}
	if n.Stats().ReplicateFailures != 0 {
		t.Fatalf("replicate failures on a healthy network: %+v", n.Stats())
	}
}

func TestReplicateRejectsChecksumMismatch(t *testing.T) {
	_, nodes, locals := testCluster(t, 6, "a", "b")
	n := nodes["b"]
	_, err := n.HandleReplicate(ReplicaChunk{
		Origin: "a", Kind: ReplicaSpill, Key: "00deadbeef", Offset: 0,
		Total: 4, Data: []byte("data"),
	})
	if !errors.Is(err, ErrPeerRejected) {
		t.Fatalf("corrupt replica accepted: err=%v", err)
	}
	if len(locals["b"].replicas) != 0 {
		t.Fatalf("corrupt replica stored")
	}
	if n.Stats().ReplicaRejects == 0 {
		t.Fatalf("reject not counted")
	}
}

func TestReplicateResumesFromHighWaterMark(t *testing.T) {
	_, nodes, _ := testCluster(t, 7, "a", "b")
	n := nodes["b"]
	data := []byte("0123456789abcdef0123456789abcdef") // two 16-byte chunks
	key := sha256Hex(data)
	// First half lands.
	ack, err := n.HandleReplicate(ReplicaChunk{Origin: "a", Kind: ReplicaSpill, Key: key, Offset: 0, Total: 32, Data: data[:16]})
	if err != nil || ack.Have != 16 {
		t.Fatalf("first chunk: ack=%+v err=%v", ack, err)
	}
	// A retransmit of the first half is answered with the mark, not an
	// error — the sender resumes instead of starting over.
	ack, err = n.HandleReplicate(ReplicaChunk{Origin: "a", Kind: ReplicaSpill, Key: key, Offset: 0, Total: 32, Data: data[:16]})
	if err != nil || !ack.Resume || ack.Have != 16 {
		t.Fatalf("duplicate chunk: ack=%+v err=%v, want resume at 16", ack, err)
	}
	// Resuming from the mark completes and verifies.
	ack, err = n.HandleReplicate(ReplicaChunk{Origin: "a", Kind: ReplicaSpill, Key: key, Offset: 16, Total: 32, Data: data[16:]})
	if err != nil || ack.Have != 32 {
		t.Fatalf("final chunk: ack=%+v err=%v", ack, err)
	}
	if n.Stats().ReplicaPayloadsIn != 1 {
		t.Fatalf("payload not counted complete: %+v", n.Stats())
	}
}

func TestDeadPeerJobsAdoptedByElectedReplicaOnly(t *testing.T) {
	ids := []NodeID{"a", "b", "c"}
	net, nodes, locals := testCluster(t, 8, ids...)

	// b owns key (primary); replicate a job record from b to its peers.
	key := ownerOf(t, nodes["b"], "b")
	rec := JobRecord{ID: "job-77", Dataset: key, Done: false, Payload: json.RawMessage(`{"spec":1}`)}
	nodes["b"].ReplicateJobRecord(context.Background(), rec)

	// Everyone heartbeats for a while, then b goes dark.
	for i := 0; i < 10; i++ {
		for _, id := range ids {
			nodes[id].Tick()
		}
		time.Sleep(time.Millisecond)
	}
	net.Kill("b")
	deadline := time.Now().Add(10 * time.Second)
	for nodes["a"].Alive("b") || nodes["c"].Alive("b") {
		if time.Now().After(deadline) {
			t.Fatalf("b never declared dead")
		}
		nodes["a"].Tick()
		nodes["c"].Tick()
		time.Sleep(2 * time.Millisecond)
	}

	adopted := locals["a"].adoptedCount() + locals["c"].adoptedCount()
	if adopted != 1 {
		t.Fatalf("job adopted by %d nodes, want exactly 1", adopted)
	}
	// The adopter must be the highest-priority surviving owner of the
	// dataset.
	var wantAdopter NodeID
	for _, id := range nodes["a"].Owners(key) {
		if id != "b" {
			wantAdopter = id
			break
		}
	}
	if locals[wantAdopter].adoptedCount() != 1 {
		t.Fatalf("elected adopter %s did not adopt the job", wantAdopter)
	}
}

func TestGossipSpreadsLivenessThroughPartition(t *testing.T) {
	// a<->b and b<->c can talk; a<->c cannot. a must still consider c
	// alive via b's piggybacked view. Deliver the heartbeats by hand so
	// the evidence chain is explicit: c's heartbeat reaches b, then b's
	// view (carrying c's sequence) reaches a.
	_, nodes, _ := testCluster(t, 9, "a", "b", "c")
	nodes["b"].HandleHeartbeat(Heartbeat{From: "c", Seq: 7})
	nodes["a"].HandleHeartbeat(Heartbeat{From: "b", Seq: 3, View: nodes["b"].health.seqs()})
	if !nodes["a"].Alive("c") {
		t.Fatalf("indirect liveness evidence ignored")
	}
	a := nodes["a"]
	a.health.mu.Lock()
	seq := a.health.peers["c"].seq
	a.health.mu.Unlock()
	if seq != 7 {
		t.Fatalf("gossiped seq = %d, want 7", seq)
	}
}

func TestGossipEchoDoesNotResurrectDeadPeer(t *testing.T) {
	_, nodes, _ := testCluster(t, 10, "a", "b", "c")
	a := nodes["a"]
	a.HandleHeartbeat(Heartbeat{From: "b", Seq: 9})
	a.health.mu.Lock()
	a.health.peers["b"].state = PeerDead
	a.health.mu.Unlock()
	// The same sequence bouncing back through c's view is old news.
	a.HandleHeartbeat(Heartbeat{From: "c", Seq: 1, View: map[NodeID]uint64{"b": 9}})
	if a.Alive("b") {
		t.Fatalf("stale gossiped sequence resurrected a dead peer")
	}
	// Fresh evidence does resurrect.
	a.HandleHeartbeat(Heartbeat{From: "c", Seq: 2, View: map[NodeID]uint64{"b": 10}})
	if !a.Alive("b") {
		t.Fatalf("fresh gossiped sequence did not resurrect the peer")
	}
	if a.Stats().Resurrections != 1 {
		t.Fatalf("resurrection not counted: %+v", a.Stats())
	}
}

func BenchmarkForwardJob(b *testing.B) {
	net := NewMemNetwork(42)
	nodes := make(map[NodeID]*Node)
	for _, id := range []NodeID{"a", "b"} {
		peer := NodeID("a")
		if id == "a" {
			peer = "b"
		}
		n, err := NewNode(Options{
			Self: id, Peers: []NodeID{peer}, ReplicationFactor: 1,
			AttemptTimeout: time.Second, Transport: net.Transport(id),
			Local: newFakeLocal(), Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		net.Attach(id, n)
		nodes[id] = n
	}
	n := nodes["a"]
	var key string
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("synthetic-hash-%d", i)
		if n.Owners(k)[0] == "b" {
			key = k
			break
		}
	}
	if key == "" {
		b.Fatal("no key owned by b")
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := JobRequest{ID: fmt.Sprintf("j%d", i), Dataset: key}
		if _, err := n.SubmitJob(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
