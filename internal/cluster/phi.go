package cluster

import (
	"math"
	"time"
)

// phiWindow is how many heartbeat inter-arrival intervals the detector
// remembers. A small window adapts quickly to a changed heartbeat
// cadence while still smoothing one-off hiccups.
const phiWindow = 32

// DefaultPhiThreshold is the suspicion level at which a peer is
// declared dead. Phi is -log10 of the probability that a heartbeat gap
// this long would occur given the observed arrival history, so 8 means
// "the chance this peer is still alive and merely slow is 10^-8".
const DefaultPhiThreshold = 8.0

// phiDetector is a phi-accrual failure detector for one peer
// (Hayashibara et al., "The phi accrual failure detector"), using the
// exponential-distribution form: with mean inter-arrival m, the
// probability of a gap longer than t is e^(-t/m), so
//
//	phi(t) = -log10(e^(-t/m)) = t / (m * ln 10).
//
// Unlike a boolean timeout, phi grows continuously with silence, so the
// caller picks the false-positive rate by picking the threshold, and a
// noisy network raises m, which automatically lengthens the grace
// period. The zero value is unusable; use newPhiDetector. Not safe for
// concurrent use — the health tracker serializes access.
type phiDetector struct {
	intervals [phiWindow]float64 // seconds
	n         int                // filled entries
	next      int                // ring cursor
	sum       float64
	last      time.Time // last arrival; zero until the first
}

func newPhiDetector() *phiDetector { return &phiDetector{} }

// heartbeat records an arrival at now. Out-of-order or duplicate
// arrivals (now before the last) only refresh the arrival time.
func (d *phiDetector) heartbeat(now time.Time) {
	if d.last.IsZero() {
		d.last = now
		return
	}
	dt := now.Sub(d.last).Seconds()
	if dt <= 0 {
		return
	}
	d.last = now
	if d.n == phiWindow {
		d.sum -= d.intervals[d.next]
	} else {
		d.n++
	}
	d.intervals[d.next] = dt
	d.sum += dt
	d.next = (d.next + 1) % phiWindow
}

// phi returns the current suspicion level at now. Before the first
// arrival, or before the first full interval, the detector falls back
// to bootstrapMean so a peer that never speaks is still eventually
// suspected.
func (d *phiDetector) phi(now time.Time, bootstrapMean time.Duration) float64 {
	if d.last.IsZero() {
		return 0 // no arrival yet: the caller seeds last via heartbeat at join
	}
	mean := bootstrapMean.Seconds()
	if d.n > 0 {
		mean = d.sum / float64(d.n)
	}
	if mean <= 0 {
		return math.Inf(1)
	}
	elapsed := now.Sub(d.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	const log10e = 0.4342944819032518 // 1 / ln 10
	return elapsed / mean * log10e
}
