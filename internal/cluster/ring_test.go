package cluster

import (
	"fmt"
	"math"
	"testing"
)

func TestRingOwnersBasics(t *testing.T) {
	r := NewRing(64)
	for _, id := range []NodeID{"a", "b", "c"} {
		r.Add(id)
	}
	owners := r.Owners("some-key", 2)
	if len(owners) != 2 {
		t.Fatalf("Owners = %v, want 2 distinct owners", owners)
	}
	if owners[0] == owners[1] {
		t.Fatalf("Owners returned a duplicate: %v", owners)
	}
	// Asking for more replicas than members yields all members.
	if got := r.Owners("some-key", 5); len(got) != 3 {
		t.Fatalf("Owners(n=5) = %v, want all 3 members", got)
	}
	if r.Primary("some-key") != owners[0] {
		t.Fatalf("Primary disagrees with Owners[0]")
	}
	if got := NewRing(8).Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}

func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	mk := func(ids ...NodeID) *Ring {
		r := NewRing(32)
		for _, id := range ids {
			r.Add(id)
		}
		return r
	}
	r1 := mk("a", "b", "c", "d")
	r2 := mk("d", "c", "b", "a")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.Owners(key, 3), r2.Owners(key, 3)
		if fmt.Sprint(o1) != fmt.Sprint(o2) {
			t.Fatalf("key %s: owners depend on insertion order: %v vs %v", key, o1, o2)
		}
	}
}

func TestRingStabilityUnderMembershipChange(t *testing.T) {
	r := NewRing(64)
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		r.Add(id)
	}
	const keys = 2000
	before := make(map[string]NodeID, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Primary(k)
	}
	r.Remove("d")
	moved, lostOwner := 0, 0
	for k, owner := range before {
		now := r.Primary(k)
		if owner == "d" {
			lostOwner++
			continue // these must move; they had a dead primary
		}
		if now != owner {
			moved++
		}
	}
	// Consistent hashing: keys not owned by the removed node must not
	// move. (That is the whole point of the structure.)
	if moved != 0 {
		t.Fatalf("%d/%d keys with surviving primaries moved on Remove", moved, keys-lostOwner)
	}
	if lostOwner == 0 {
		t.Fatalf("degenerate ring: removed member owned no keys")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	members := []NodeID{"a", "b", "c", "d", "e"}
	for _, id := range members {
		r.Add(id)
	}
	counts := map[NodeID]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Primary(fmt.Sprintf("key-%d", i))]++
	}
	want := float64(keys) / float64(len(members))
	for _, id := range members {
		dev := math.Abs(float64(counts[id])-want) / want
		if dev > 0.5 {
			t.Errorf("member %s owns %d keys, >50%% off the fair share %.0f", id, counts[id], want)
		}
	}
}

func TestRingRendezvousTiebreakIsPerKey(t *testing.T) {
	// Two members with identical point positions (forced by a 0-vnode
	// trick is impossible; instead assert the tiebreak function itself
	// orders differently for different keys, which is what makes a tie
	// split load instead of always favoring one member).
	a, b := NodeID("node-a"), NodeID("node-b")
	varies := false
	for i := 0; i < 64 && !varies; i++ {
		k1 := fmt.Sprintf("k%d", i)
		k2 := fmt.Sprintf("k%d", i+1)
		if (rendezvous(k1, a) > rendezvous(k1, b)) != (rendezvous(k2, a) > rendezvous(k2, b)) {
			varies = true
		}
	}
	if !varies {
		t.Fatalf("rendezvous tiebreak always favors the same member")
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(DefaultVirtualNodes)
	for i := 0; i < 8; i++ {
		r.Add(NodeID(fmt.Sprintf("node-%d", i)))
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("dataset-hash-%064d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.Owners(keys[i%len(keys)], 2); len(got) != 2 {
			b.Fatalf("Owners = %v", got)
		}
	}
}
