// Package divexplorer is a Go implementation of DivExplorer, the
// pattern-divergence analysis of classifier behavior from:
//
//	Eliana Pastor, Luca de Alfaro, Elena Baralis.
//	"Looking for Trouble: Analyzing Classifier Behavior via Pattern
//	Divergence." SIGMOD 2021.
//
// Given a dataset of discrete attributes, ground-truth labels, and the
// predictions of an arbitrary black-box classifier, DivExplorer measures,
// for every itemset (conjunction of attribute=value predicates) with
// support above a threshold, the divergence of performance metrics such
// as the false positive rate on the itemset's subgroup versus the whole
// dataset. On top of the exhaustive exploration it provides:
//
//   - Bayesian significance of each divergence (Beta posterior + Welch t);
//   - local Shapley values attributing an itemset's divergence to items;
//   - global item divergence — a Shapley-value generalization measuring
//     each item's lattice-wide contribution to divergence;
//   - corrective items, which reduce divergence when added to a pattern;
//   - redundancy pruning for compact summaries;
//   - itemset-lattice exploration with corrective-phenomenon highlighting.
//
// # Quick start
//
//	data, _ := divexplorer.ReadCSV(f, divexplorer.CSVOptions{})
//	exp, _ := divexplorer.NewClassifierExplorer(data, truth, pred)
//	res, _ := exp.Explore(0.05)
//	for _, p := range res.TopK(divexplorer.FPR, 10, divexplorer.ByDivergence) {
//	    fmt.Println(res.Format(p.Items), p.Support, p.Divergence, p.T)
//	}
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record
// of every table and figure.
package divexplorer
