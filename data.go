package divexplorer

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

// ReadCSV reads a headered CSV stream into a Data. All columns are
// treated as categorical; use Discretize* helpers afterwards for
// continuous columns.
func ReadCSV(r io.Reader, opts CSVOptions) (*Data, error) {
	return dataset.ReadCSV(r, opts)
}

// WriteCSV writes a Data as headered CSV.
func WriteCSV(w io.Writer, d *Data) error { return dataset.WriteCSV(w, d) }

// NewDataBuilder creates a builder for assembling a Data from string
// records with the given attribute names.
func NewDataBuilder(attrNames ...string) *DataBuilder {
	return dataset.NewBuilder(attrNames...)
}

// DiscretizeEqualWidth rebuilds the dataset with the named numeric
// attribute split into n equal-width bins.
func DiscretizeEqualWidth(d *Data, attr string, n int) (*Data, error) {
	return rediscretize(d, attr, func(xs []float64) (discretize.Binner, error) {
		return discretize.NewEqualWidth(xs, n)
	})
}

// DiscretizeEqualFrequency rebuilds the dataset with the named numeric
// attribute split into up to n equal-frequency (quantile) bins.
func DiscretizeEqualFrequency(d *Data, attr string, n int) (*Data, error) {
	return rediscretize(d, attr, func(xs []float64) (discretize.Binner, error) {
		return discretize.NewEqualFrequency(xs, n)
	})
}

// DiscretizeMDLP rebuilds the dataset with the named numeric attribute
// binned by supervised entropy minimization with the Fayyad–Irani MDL
// stopping criterion, using the given Boolean labels. This aligns bins
// with label behavior — the preferred choice when the discretized data
// will be audited against those labels. Fails when no cut is
// informative; fall back to DiscretizeEqualFrequency then.
func DiscretizeMDLP(d *Data, attr string, labels []bool) (*Data, error) {
	if len(labels) != d.NumRows() {
		return nil, fmt.Errorf("divexplorer: %d labels for %d rows", len(labels), d.NumRows())
	}
	return rediscretize(d, attr, func(xs []float64) (discretize.Binner, error) {
		return discretize.NewEntropyMDLP(xs, labels)
	})
}

// DiscretizeCutPoints rebuilds the dataset with the named numeric
// attribute split at explicit interior cut points.
func DiscretizeCutPoints(d *Data, attr string, cuts []float64) (*Data, error) {
	b, err := discretize.NewCutPoints(cuts)
	if err != nil {
		return nil, err
	}
	return discretize.Apply(d, attr, b)
}

func rediscretize(d *Data, attr string, mk func([]float64) (discretize.Binner, error)) (*Data, error) {
	idx := d.AttrIndex(attr)
	if idx < 0 {
		return nil, fmt.Errorf("divexplorer: unknown attribute %q", attr)
	}
	if !discretize.Numeric(d, idx) {
		return nil, fmt.Errorf("divexplorer: attribute %q is not numeric", attr)
	}
	xs, err := columnFloats(d, idx)
	if err != nil {
		return nil, err
	}
	b, err := mk(xs)
	if err != nil {
		return nil, err
	}
	return discretize.Apply(d, attr, b)
}

func columnFloats(d *Data, idx int) ([]float64, error) {
	xs := make([]float64, d.NumRows())
	for r := range d.Rows {
		v := strings.TrimSpace(d.Value(r, idx))
		var x float64
		if _, err := fmt.Sscanf(v, "%g", &x); err != nil {
			return nil, fmt.Errorf("divexplorer: value %q is not numeric: %w", v, err)
		}
		xs[r] = x
	}
	return xs, nil
}

// ParseBoolColumn interprets a column as Boolean labels. Accepted
// positive values: "1", "true", "t", "yes", "y" (case-insensitive);
// negatives: "0", "false", "f", "no", "n". Anything else is an error.
func ParseBoolColumn(d *Data, attr string) ([]bool, error) {
	idx := d.AttrIndex(attr)
	if idx < 0 {
		return nil, fmt.Errorf("divexplorer: unknown attribute %q", attr)
	}
	out := make([]bool, d.NumRows())
	for r := range d.Rows {
		v := strings.ToLower(strings.TrimSpace(d.Value(r, idx)))
		switch v {
		case "1", "true", "t", "yes", "y":
			out[r] = true
		case "0", "false", "f", "no", "n":
			out[r] = false
		default:
			return nil, fmt.Errorf("divexplorer: row %d: cannot parse %q as Boolean", r, v)
		}
	}
	return out, nil
}
