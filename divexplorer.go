package divexplorer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fpm"
	"repro/internal/htmlreport"
	"repro/internal/lattice"
)

// Explorer prepares a dataset + outcome encoding for divergence
// exploration. Build one with NewClassifierExplorer (confusion-matrix
// metrics) or NewOutcomeExplorer (a generic Boolean outcome function),
// then call Explore.
type Explorer struct {
	db *fpm.TxDB
}

// NewClassifierExplorer builds an explorer for classifier analysis: each
// instance is assigned its confusion cell (TP/FP/FN/TN) from the ground
// truth and the model's predictions, enabling every confusion-based
// metric (FPR, FNR, error rate, accuracy, ...) from a single exploration.
// The classifier itself is never consulted — the approach is model
// agnostic (paper Sec. 3.2).
func NewClassifierExplorer(d *Data, truth, pred []bool) (*Explorer, error) {
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		return nil, err
	}
	db, err := fpm.NewTxDB(d, classes, core.NumConfusionClasses)
	if err != nil {
		return nil, err
	}
	return &Explorer{db: db}, nil
}

// NewOutcomeExplorer builds an explorer for an arbitrary Boolean outcome
// function o : D → {T, F, ⊥} (paper Def. 3.2); use the OutcomeRate
// metric with the resulting exploration.
func NewOutcomeExplorer(d *Data, o func(row int) Outcome) (*Explorer, error) {
	if o == nil {
		return nil, fmt.Errorf("divexplorer: nil outcome function")
	}
	classes := make([]uint8, d.NumRows())
	for r := range classes {
		v := o(r)
		if v > OutcomeBottom {
			return nil, fmt.Errorf("divexplorer: outcome function returned invalid value %d on row %d", v, r)
		}
		classes[r] = uint8(v)
	}
	db, err := fpm.NewTxDB(d, classes, core.NumOutcomeClasses)
	if err != nil {
		return nil, err
	}
	return &Explorer{db: db}, nil
}

// ExploreOption customizes an exploration.
type ExploreOption func(*core.Options) error

// WithMiner selects the frequent-pattern-mining algorithm: "fpgrowth"
// (default), "apriori", "eclat", or "fpgrowth-parallel".
func WithMiner(name string) ExploreOption {
	return func(o *core.Options) error {
		switch name {
		case "fpgrowth":
			o.Miner = fpm.FPGrowth{}
		case "apriori":
			o.Miner = fpm.Apriori{}
		case "eclat":
			o.Miner = fpm.Eclat{}
		case "fpgrowth-parallel", "parallel":
			o.Miner = fpm.Parallel{}
		default:
			return fmt.Errorf("divexplorer: unknown miner %q (want fpgrowth, apriori, eclat, or fpgrowth-parallel)", name)
		}
		return nil
	}
}

// Explore runs Algorithm 1: it mines every itemset with support at least
// minSup, tallying outcome counts in the same pass, and returns a Result
// over which all divergence analyses are evaluated without touching the
// data again.
func (e *Explorer) Explore(minSup float64, opts ...ExploreOption) (*Result, error) {
	var o core.Options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	res, err := core.Explore(e.db, minSup, o)
	if err != nil {
		return nil, err
	}
	return &Result{Result: res}, nil
}

// ExploreTopK streams the mining pass and returns only the k most
// divergent patterns for one metric, in O(k) memory. Exact but
// leaderboard-only: Shapley, global divergence and corrective analyses
// need the full Explore result.
func (e *Explorer) ExploreTopK(minSup float64, m Metric, k int, order RankOrder) ([]Ranked, error) {
	return core.ExploreTopK(e.db, minSup, m, k, order)
}

// Result gives access to every analysis of the paper over one
// exploration. It embeds the core engine result; see the methods of
// core.Result (TopK, LocalShapley, GlobalDivergence, CorrectiveItems,
// Prune, ...) plus the conveniences below.
type Result struct {
	*core.Result
}

// Itemset resolves "attr=value" strings into a canonical pattern.
func (r *Result) Itemset(names ...string) (Itemset, error) {
	return r.DB.Catalog.ItemsetByNames(names...)
}

// Format renders a pattern as "attr=value, attr=value".
func (r *Result) Format(is Itemset) string { return r.DB.Catalog.Format(is) }

// ItemName renders one item as "attr=value".
func (r *Result) ItemName(it Item) string { return r.DB.Catalog.Name(it) }

// Lattice materializes the subset lattice of a frequent pattern for
// visual exploration (paper Sec. 6.4): node divergences, corrective-
// phenomenon marks, and highlighting of nodes with |Δ| at or above
// threshold. Render with the lattice's ASCII or DOT methods.
func (r *Result) Lattice(target Itemset, m Metric, threshold float64) (*lattice.Lattice, error) {
	return lattice.Build(r.Result, target, m, threshold)
}

// Compare matches the frequent patterns of two explorations over the
// same schema — two data snapshots, or two models on the same data — and
// returns the per-pattern rate shifts with Bayesian significance,
// largest net movement first. Use it to localize drift or regression to
// specific subgroups rather than a single aggregate number.
func Compare(a, b *Result, m Metric) ([]PatternShift, error) {
	return core.Compare(a.Result, b.Result, m)
}

// HTMLReport renders a self-contained HTML report of the exploration;
// see internal/htmlreport for the section layout. An empty config uses
// sensible defaults (FPR and FNR, top 10 patterns).
func (r *Result) HTMLReport(cfg HTMLReportConfig) ([]byte, error) {
	return htmlreport.Render(r.Result, cfg)
}

// HTMLReportConfig configures HTMLReport.
type HTMLReportConfig = htmlreport.Config
