// Adult fairness review: summarizing divergence with redundancy pruning.
//
// A random forest (trained from scratch in this repository) classifies
// the synthetic adult census stand-in; DivExplorer then surfaces where
// the model's false positive and false negative rates diverge, and the
// ε-redundancy pruning of Sec. 3.5 compresses thousands of overlapping
// patterns into a short, diverse report. Finally the subset lattice of a
// corrected pattern is rendered, as in Fig. 11.
//
// Run with: go run ./examples/adult_fairness
package main

import (
	"fmt"
	"log"

	divexplorer "repro"
	"repro/internal/classifier"
	"repro/internal/datagen"
)

func main() {
	// Synthetic stand-in for the UCI adult dataset (see DESIGN.md §4).
	gen := datagen.Adult(7)

	// Train our own random forest on half the data and audit its
	// predictions on everything — the model is a black box to the
	// analysis.
	half := gen.Data.NumRows() / 2
	trainRows := make([]int, 0, half)
	for i := 0; i < half; i++ {
		trainRows = append(trainRows, i)
	}
	trainData := gen.Data.Subset(trainRows)
	forest, err := classifier.TrainForest(trainData, gen.Truth[:half], classifier.ForestConfig{
		NumTrees: 20,
		MaxDepth: 8,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := classifier.PredictAll(forest, gen.Data)
	fpr, fnr := classifier.ConfusionRates(gen.Truth, pred)
	fmt.Printf("random forest on adult: FPR=%.3f FNR=%.3f over %d rows\n\n",
		fpr, fnr, gen.Data.NumRows())

	exp, err := divexplorer.NewClassifierExplorer(gen.Data, gen.Truth, pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.05)
	if err != nil {
		log.Fatal(err)
	}

	const eps = 0.05
	fmt.Printf("frequent itemsets: %d; after ε=%g redundancy pruning (FPR): %d\n\n",
		res.NumPatterns(), eps, res.PrunedCount(divexplorer.FPR, eps))

	for _, m := range []divexplorer.Metric{divexplorer.FPR, divexplorer.FNR} {
		fmt.Printf("top non-redundant Δ_%s patterns:\n", m.Name)
		for _, rk := range res.TopKPruned(m, eps, 5, divexplorer.ByDivergence) {
			fmt.Printf("  %-60s sup=%.2f Δ=%+.3f t=%.1f\n",
				res.Format(rk.Items), rk.Support, rk.Divergence, rk.T)
		}
		fmt.Println()
	}

	// Corrective phenomenon on the FNR, rendered as a lattice (Fig. 11).
	corr := res.TopCorrective(divexplorer.FNR, 10, 2.0)
	for _, c := range corr {
		if len(c.Base) != 2 {
			continue
		}
		target := c.Base.Union(divexplorer.Itemset{c.Item})
		l, err := res.Lattice(target, divexplorer.FNR, 0.15)
		if err != nil {
			continue
		}
		fmt.Printf("corrective lattice (item %s corrects %s):\n%s",
			res.ItemName(c.Item), res.Format(c.Base), l.ASCII())
		break
	}
}
