// Drift monitor: localizing performance drift to subgroups.
//
// A model is validated on one data snapshot and then observed on a later
// snapshot in which one subgroup's behavior changed (here: self-employed
// urban applicants became much harder to score). The aggregate FPR moves
// only a little — but Compare pinpoints exactly which patterns drifted,
// with Bayesian significance, by matching the frequent itemsets of the
// two explorations. Finally an HTML report of the degraded snapshot is
// written next to the binary.
//
// Run with: go run ./examples/drift_monitor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	divexplorer "repro"
)

// snapshot draws a synthetic scoring dataset; shift > 0 degrades the
// (self-employed, urban) subgroup's false positive behavior.
func snapshot(seed int64, n int, shift float64) (*divexplorer.Data, []bool, []bool) {
	rng := rand.New(rand.NewSource(seed))
	b := divexplorer.NewDataBuilder("employment", "region", "history")
	var truth, pred []bool
	emp := []string{"salaried", "self-employed"}
	reg := []string{"urban", "rural"}
	hist := []string{"clean", "arrears"}
	for i := 0; i < n; i++ {
		e := emp[rng.Intn(2)]
		r := reg[rng.Intn(2)]
		h := hist[rng.Intn(2)]
		if err := b.Add(e, r, h); err != nil {
			log.Fatal(err)
		}
		// Ground truth default risk.
		p := 0.2
		if h == "arrears" {
			p += 0.3
		}
		tv := rng.Float64() < p
		truth = append(truth, tv)
		// Model: decent, but FP rate on (self-employed, urban) grows by
		// `shift` in the degraded snapshot.
		fp := 0.08
		if e == "self-employed" && r == "urban" {
			fp += shift
		}
		var pv bool
		if tv {
			pv = rng.Float64() < 0.7
		} else {
			pv = rng.Float64() < fp
		}
		pred = append(pred, pv)
	}
	// Canonicalize the domains: snapshots see values in different orders,
	// and Compare requires an identical item space.
	b.SortDomains()
	d, err := b.Dataset()
	if err != nil {
		log.Fatal(err)
	}
	return d, truth, pred
}

func explore(d *divexplorer.Data, truth, pred []bool) *divexplorer.Result {
	exp, err := divexplorer.NewClassifierExplorer(d, truth, pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.05)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	baseData, baseTruth, basePred := snapshot(1, 6000, 0)
	liveData, liveTruth, livePred := snapshot(2, 6000, 0.35)

	baseline := explore(baseData, baseTruth, basePred)
	live := explore(liveData, liveTruth, livePred)
	fmt.Printf("overall FPR: baseline %.3f -> live %.3f\n\n",
		baseline.GlobalRate(divexplorer.FPR), live.GlobalRate(divexplorer.FPR))

	shifts, err := divexplorer.Compare(baseline, live, divexplorer.FPR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("largest subgroup FPR shifts (beyond the global movement):")
	for i, s := range shifts {
		if i == 5 {
			break
		}
		fmt.Printf("  %-44s %.3f -> %.3f  net %+0.3f  t=%.1f\n",
			baseline.Format(s.Items), s.RateA, s.RateB, s.NetShift, s.T)
	}

	// Archive an HTML report of the degraded snapshot.
	html, err := live.HTMLReport(divexplorer.HTMLReportConfig{
		Title:    "Live snapshot — divergence report",
		Epsilon:  0.05,
		FDRLevel: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	const out = "drift_report.html"
	if err := os.WriteFile(out, html, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes)\n", out, len(html))
}
