// Fairness audit: group metrics, divergence, and out-of-fold honesty.
//
// A naive Bayes model is audited on the synthetic COMPAS stand-in using
// out-of-fold predictions (every instance scored by a model that never
// saw it, via 5-fold cross-validation), so the audit measures the
// training procedure's behavior rather than memorization. The report
// combines the classic group-fairness gaps for the protected attribute
// with DivExplorer's intersectional view: the most divergent patterns
// and the items driving them globally.
//
// Run with: go run ./examples/fairness_audit
package main

import (
	"fmt"
	"log"

	divexplorer "repro"
	"repro/internal/classifier"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	gen := datagen.COMPAS(41)

	// Out-of-fold predictions from a naive Bayes training procedure.
	pred, err := classifier.CrossValPredictions(gen.Data, gen.Truth, 5, 41,
		func(d *dataset.Dataset, labels []bool) (classifier.Classifier, error) {
			return classifier.TrainNaiveBayes(d, labels, classifier.NaiveBayesConfig{})
		})
	if err != nil {
		log.Fatal(err)
	}
	fpr, fnr := classifier.ConfusionRates(gen.Truth, pred)
	fmt.Printf("naive Bayes (5-fold out-of-fold): FPR=%.3f FNR=%.3f\n\n", fpr, fnr)

	exp, err := divexplorer.NewClassifierExplorer(gen.Data, gen.Truth, pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.05)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Classic group fairness for the protected attribute.
	rep, err := res.Fairness("race")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("group fairness by race:")
	for _, g := range rep.Groups {
		fmt.Printf("  %-8s sup=%.2f posRate=%.3f FPR=%.3f FNR=%.3f\n",
			g.Value, g.Support, g.Positive, g.FPR, g.FNR)
	}
	fmt.Printf("gaps: statistical parity %.3f, predictive equality (FPR) %.3f, equal opportunity %.3f\n\n",
		rep.StatParityGap, rep.FPRGap, rep.EqualOppGap)

	// 2. Intersectional view: where exactly does the FPR diverge, and is
	// it significant after FDR control?
	fmt.Println("most FPR-divergent intersectional subgroups (FDR q=0.05):")
	sig := res.SignificantPatterns(divexplorer.FPR, 0.05, divexplorer.ByDivergence)
	for i, s := range sig {
		if i == 5 {
			break
		}
		fmt.Printf("  %-52s Δ=%+.3f adj-p=%.1e\n", res.Format(s.Items), s.Divergence, s.AdjP)
	}

	// 3. Which single values drive divergence across all contexts?
	fmt.Println("\nglobal item contributions to FPR divergence (top 6):")
	cmp := res.CompareItemDivergence(divexplorer.FPR)
	for i, c := range cmp {
		if i == 6 {
			break
		}
		fmt.Printf("  %-22s global %+.4f   individual %+.4f\n",
			res.ItemName(c.Item), c.Global, c.Individual)
	}
}
