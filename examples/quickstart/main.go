// Quickstart: run DivExplorer on a small inline CSV of loan decisions.
//
// The dataset has two discrete attributes plus a ground-truth and a
// predicted label. We explore all patterns with support >= 0.1, print the
// most FPR-divergent subgroups with their Bayesian significance, and
// decompose the top pattern's divergence into per-item Shapley
// contributions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	divexplorer "repro"
)

const loans = `employment,region,truth,pred
salaried,urban,0,0
salaried,urban,0,0
salaried,urban,1,1
salaried,rural,0,1
salaried,rural,0,0
salaried,rural,1,1
self-employed,urban,0,1
self-employed,urban,0,1
self-employed,urban,0,1
self-employed,urban,0,0
self-employed,urban,1,1
self-employed,rural,0,1
self-employed,rural,0,0
self-employed,rural,1,0
salaried,urban,0,0
salaried,urban,1,1
salaried,rural,0,0
self-employed,rural,0,0
self-employed,rural,1,1
salaried,urban,0,0
`

func main() {
	data, err := divexplorer.ReadCSV(strings.NewReader(loans), divexplorer.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := divexplorer.ParseBoolColumn(data, "truth")
	if err != nil {
		log.Fatal(err)
	}
	pred, err := divexplorer.ParseBoolColumn(data, "pred")
	if err != nil {
		log.Fatal(err)
	}
	data, err = data.DropAttrs("truth", "pred")
	if err != nil {
		log.Fatal(err)
	}

	exp, err := divexplorer.NewClassifierExplorer(data, truth, pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overall FPR = %.3f over %d rows (%d frequent itemsets)\n\n",
		res.GlobalRate(divexplorer.FPR), data.NumRows(), res.NumPatterns())

	fmt.Println("most FPR-divergent subgroups:")
	for _, rk := range res.TopK(divexplorer.FPR, 5, divexplorer.ByDivergence) {
		fmt.Printf("  %-42s sup=%.2f  FPR=%.3f  Δ=%+.3f  t=%.1f\n",
			res.Format(rk.Items), rk.Support, rk.Rate, rk.Divergence, rk.T)
	}

	top := res.TopK(divexplorer.FPR, 1, divexplorer.ByDivergence)[0]
	fmt.Printf("\nShapley decomposition of %s:\n", res.Format(top.Items))
	cs, err := res.LocalShapley(top.Items, divexplorer.FPR)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cs {
		fmt.Printf("  %-24s %+.3f\n", res.ItemName(c.Item), c.Value)
	}
}
