// Model debugging: finding a planted error pocket with global divergence.
//
// This example reproduces the artificial-dataset study of Sec. 4.4: a
// classifier's errors are concentrated in the itemsets a=b=c=0 and
// a=b=c=1, invisible to per-item statistics. Individual item divergence
// drowns in noise; global item divergence — the Shapley generalization
// over the whole frequent lattice — cleanly isolates the three attributes
// involved. The exhaustive exploration then pinpoints the exact pockets.
//
// Run with: go run ./examples/model_debugging
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	divexplorer "repro"
	"repro/internal/datagen"
)

func main() {
	// 50,000 instances, ten i.i.d. binary attributes; ground truth flipped
	// for half the instances with a=b=c (see Sec. 4.4 of the paper).
	gen := datagen.Artificial(11)

	exp, err := divexplorer.NewClassifierExplorer(gen.Data, gen.Truth, gen.Pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artificial: %d rows, %d frequent itemsets at s=0.01\n\n",
		gen.Data.NumRows(), res.NumPatterns())

	// Step 1: per-item statistics are useless here.
	fmt.Println("individual item FPR divergence (top 6 by |Δ|):")
	ind := res.IndividualDivergence(divexplorer.FPR)
	type itemDiv struct {
		item divexplorer.Item
		div  float64
	}
	var byInd []itemDiv
	for it, d := range ind {
		if !math.IsNaN(d) {
			byInd = append(byInd, itemDiv{it, d})
		}
	}
	sort.Slice(byInd, func(i, j int) bool { return math.Abs(byInd[i].div) > math.Abs(byInd[j].div) })
	for _, x := range byInd[:6] {
		fmt.Printf("  %-6s %+.4f\n", res.ItemName(x.item), x.div)
	}

	// Step 2: global divergence surfaces a, b, c.
	fmt.Println("\nglobal item FPR divergence (top 6):")
	cmp := res.CompareItemDivergence(divexplorer.FPR)
	for _, c := range cmp[:6] {
		fmt.Printf("  %-6s %+.4f\n", res.ItemName(c.Item), c.Global)
	}

	// Step 3: the exhaustive exploration names the exact pockets.
	fmt.Println("\nmost FPR-divergent itemsets:")
	for _, rk := range res.TopK(divexplorer.FPR, 2, divexplorer.ByDivergence) {
		fmt.Printf("  %-24s sup=%.3f FPR=%.3f Δ=%+.3f t=%.1f\n",
			res.Format(rk.Items), rk.Support, rk.Rate, rk.Divergence, rk.T)
	}
}
