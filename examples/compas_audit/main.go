// COMPAS audit: the paper's running example end to end.
//
// We generate the synthetic COMPAS stand-in (calibrated to the paper's
// overall FPR = 0.088 and FNR = 0.698), then reproduce the analysis of
// Secs. 3.6–4: the most divergent patterns per metric, the Shapley
// decomposition of the top pattern, global vs individual item
// divergence, and the strongest corrective items.
//
// Run with: go run ./examples/compas_audit
package main

import (
	"fmt"
	"log"
	"math"

	divexplorer "repro"
	"repro/internal/datagen"
)

func main() {
	// Synthetic stand-in for the ProPublica COMPAS data (see DESIGN.md §4).
	gen := datagen.COMPAS(2021)

	exp, err := divexplorer.NewClassifierExplorer(gen.Data, gen.Truth, gen.Pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COMPAS: %d defendants, overall FPR=%.3f FNR=%.3f\n\n",
		gen.Data.NumRows(), res.GlobalRate(divexplorer.FPR), res.GlobalRate(divexplorer.FNR))

	for _, m := range []divexplorer.Metric{divexplorer.FPR, divexplorer.FNR,
		divexplorer.ErrorRate, divexplorer.Accuracy} {
		fmt.Printf("top divergent patterns, Δ_%s:\n", m.Name)
		for _, rk := range res.TopK(m, 3, divexplorer.ByDivergence) {
			fmt.Printf("  %-52s sup=%.2f Δ=%+.3f t=%.1f\n",
				res.Format(rk.Items), rk.Support, rk.Divergence, rk.T)
		}
		fmt.Println()
	}

	// Drill-down: which items drive the top FPR pattern?
	top := res.TopK(divexplorer.FPR, 1, divexplorer.ByDivergence)[0]
	fmt.Printf("Shapley drill-down of %s (Δ=%+.3f):\n", res.Format(top.Items), top.Divergence)
	cs, err := res.LocalShapley(top.Items, divexplorer.FPR)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cs {
		fmt.Printf("  %-24s %+.4f\n", res.ItemName(c.Item), c.Value)
	}

	// Global view: does race matter beyond its individual divergence?
	fmt.Println("\nglobal vs individual FPR item divergence:")
	for _, c := range res.CompareItemDivergence(divexplorer.FPR) {
		ind := "   n/a"
		if !math.IsNaN(c.Individual) {
			ind = fmt.Sprintf("%+.4f", c.Individual)
		}
		fmt.Printf("  %-24s global %+.4f   individual %s\n", res.ItemName(c.Item), c.Global, ind)
	}

	// Corrective items: what renormalizes a divergent subgroup?
	fmt.Println("\nstrongest corrective items (FPR):")
	for _, c := range res.TopCorrective(divexplorer.FPR, 3, 2.0) {
		fmt.Printf("  adding %-14s to %-36s Δ %+.3f -> %+.3f (factor %.3f, t=%.1f)\n",
			res.ItemName(c.Item), res.Format(c.Base), c.BaseDiv, c.ExtDiv, c.Factor, c.T)
	}
}
