// Bias injection: the paper's user-study scenario (Sec. 6.6) as a
// debugging walkthrough.
//
// We corrupt the training labels of one COMPAS subgroup
// ({age>45, charge=M} — everyone marked recidivist), train an MLP on the
// corrupted data, and then hunt for the damage on a clean test set with
// three tools: DivExplorer (finds the exact injected pattern at rank 1),
// Slice Finder (flags the two single items and prunes — only a partial
// identification), and the FDR-controlled significant-pattern report.
//
// Run with: go run ./examples/bias_injection
package main

import (
	"fmt"
	"log"
	"math/rand"

	divexplorer "repro"
	"repro/internal/classifier"
	"repro/internal/datagen"
	"repro/internal/slicefinder"
)

func main() {
	const seed = 99
	gen := datagen.COMPAS(seed)
	rng := rand.New(rand.NewSource(seed))

	// Split 70/30 and inject the bias into the training labels.
	n := gen.Data.NumRows()
	perm := rng.Perm(n)
	nTest := n * 3 / 10
	test := gen.Data.Subset(perm[:nTest])
	train := gen.Data.Subset(perm[nTest:])
	trainTruth := make([]bool, len(perm)-nTest)
	for i, r := range perm[nTest:] {
		trainTruth[i] = gen.Truth[r]
	}
	testTruth := make([]bool, nTest)
	for i, r := range perm[:nTest] {
		testTruth[i] = gen.Truth[r]
	}
	ageIdx := gen.Data.AttrIndex("age")
	chargeIdx := gen.Data.AttrIndex("charge")
	injected := 0
	for i := range train.Rows {
		if train.Value(i, ageIdx) == ">45" && train.Value(i, chargeIdx) == "M" {
			trainTruth[i] = true
			injected++
		}
	}
	fmt.Printf("injected bias into %d training instances of {age=>45, charge=M}\n", injected)

	// Train the (now biased) model and classify the clean test set.
	mlp, err := classifier.TrainMLP(train, trainTruth, classifier.MLPConfig{
		Hidden: 16, Epochs: 40, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := classifier.PredictAll(mlp, test)
	fpr, fnr := classifier.ConfusionRates(testTruth, pred)
	fmt.Printf("biased model on clean test data: FPR=%.3f FNR=%.3f\n\n", fpr, fnr)

	// Tool 1: DivExplorer.
	exp, err := divexplorer.NewClassifierExplorer(test, testTruth, pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DivExplorer — top FPR-divergent patterns:")
	for _, rk := range res.TopK(divexplorer.FPR, 4, divexplorer.ByDivergence) {
		fmt.Printf("  %-44s Δ=%+.3f t=%.1f\n", res.Format(rk.Items), rk.Divergence, rk.T)
	}

	// Tool 2: FDR-controlled significance report.
	sig := res.SignificantPatterns(divexplorer.FPR, 0.01, divexplorer.ByAbsDivergence)
	fmt.Printf("\n%d patterns significant at FDR q=0.01; strongest:\n", len(sig))
	for i, s := range sig {
		if i == 3 {
			break
		}
		fmt.Printf("  %-44s Δ=%+.3f adj-p=%.2g\n", res.Format(s.Items), s.Divergence, s.AdjP)
	}

	// Tool 3: Slice Finder on the model's log loss — note the pruning.
	proba := make([]float64, test.NumRows())
	for i, row := range test.Rows {
		proba[i] = mlp.PredictProba(row)
	}
	loss, err := slicefinder.LogLoss(testTruth, proba)
	if err != nil {
		log.Fatal(err)
	}
	sf, err := slicefinder.New(test, loss, slicefinder.Config{MaxDegree: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSlice Finder (defaults) — problematic slices:")
	for _, s := range sf.Find() {
		fmt.Printf("  %-44s φ=%.2f degree=%d\n", sf.Catalog().Format(s.Items), s.EffectSize, s.Degree)
	}
	fmt.Println("\nnote: Slice Finder stops at the single items; only the exhaustive")
	fmt.Println("exploration names the injected pattern itself.")
}
