package divexplorer

// One benchmark per table and figure of the paper (see DESIGN.md §5).
// Each BenchmarkTable*/BenchmarkFigure* regenerates the corresponding
// experiment; BenchmarkFigure6Runtime is special in that its per-sub-
// benchmark ns/op IS the figure's data point (exploration wall time per
// dataset and support threshold). Additional micro-benchmarks cover the
// core operations (mining, Shapley, global divergence) in isolation.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/fpm"
	"repro/internal/slicefinder"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Tables.

func BenchmarkTable1CompasExamples(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2CompasTopK(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable3CorrectiveItems(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4DatasetGen(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkTable5AdultTopK(b *testing.B)         { benchExperiment(b, "table5") }
func BenchmarkTable6RedundancyPruning(b *testing.B) { benchExperiment(b, "table6") }

// Figures.

func BenchmarkFigure1Discretization(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFigure2LocalShapley(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFigure3CorrectiveShapley(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFigure5GlobalVsIndividualCompas(b *testing.B) {
	benchExperiment(b, "fig5")
}
func BenchmarkFigure7ItemsetCounts(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFigure8AdultShapley(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9AdultGlobal(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFigure10EpsilonSweep(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11Lattice(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFigure12UserStudy(b *testing.B)    { benchExperiment(b, "fig12") }

func BenchmarkFigure4GlobalVsIndividualArtificial(b *testing.B) {
	if testing.Short() {
		b.Skip("50k-row artificial dataset")
	}
	benchExperiment(b, "fig4")
}

func BenchmarkSliceFinderComparison(b *testing.B) {
	if testing.Short() {
		b.Skip("50k-row artificial dataset")
	}
	benchExperiment(b, "sec6.5")
}

// BenchmarkFigure6Runtime measures one full cold exploration (mining +
// divergence + significance) per dataset and support threshold; the
// reported ns/op per sub-benchmark regenerates Figure 6 directly.
func BenchmarkFigure6Runtime(b *testing.B) {
	dbs := map[string]*fpm.TxDB{}
	for _, name := range datagen.Names() {
		gen, err := datagen.ByName(name, experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		classes, err := core.ConfusionClasses(gen.Truth, gen.Pred)
		if err != nil {
			b.Fatal(err)
		}
		db, err := fpm.NewTxDB(gen.Data, classes, core.NumConfusionClasses)
		if err != nil {
			b.Fatal(err)
		}
		dbs[name] = db
	}
	supports := experiments.Fig6Supports
	if testing.Short() {
		supports = []float64{0.05, 0.1, 0.2}
	}
	for _, name := range datagen.Names() {
		for _, s := range supports {
			if testing.Short() && name == "german" && s < 0.05 {
				continue
			}
			b.Run(fmt.Sprintf("%s/s=%g", name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := experiments.TimeExploration(dbs[name], s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Micro-benchmarks of the core operations.

func compasResult(b *testing.B, minSup float64) (*Result, *Explorer) {
	b.Helper()
	gen := datagen.COMPAS(experiments.Seed)
	exp, err := NewClassifierExplorer(gen.Data, gen.Truth, gen.Pred)
	if err != nil {
		b.Fatal(err)
	}
	res, err := exp.Explore(minSup)
	if err != nil {
		b.Fatal(err)
	}
	return res, exp
}

func BenchmarkMineFPGrowthCompas(b *testing.B) {
	_, exp := compasResult(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Explore(0.05, WithMiner("fpgrowth")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineAprioriCompas(b *testing.B) {
	_, exp := compasResult(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Explore(0.05, WithMiner("apriori")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalShapley(b *testing.B) {
	res, _ := compasResult(b, 0.05)
	top := res.TopK(FPR, 1, ByDivergence)
	if len(top) == 0 {
		b.Fatal("no pattern")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.LocalShapley(top[0].Items, FPR); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalDivergence(b *testing.B) {
	res, _ := compasResult(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := res.GlobalDivergence(FPR); len(got) == 0 {
			b.Fatal("empty global divergence")
		}
	}
}

func BenchmarkCorrectiveScan(b *testing.B) {
	res, _ := compasResult(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.CorrectiveItems(FPR)
	}
}

func BenchmarkRedundancyPrune(b *testing.B) {
	res, _ := compasResult(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.PrunedCount(FPR, 0.05)
	}
}

func BenchmarkSliceFinderCompas(b *testing.B) {
	gen := datagen.COMPAS(experiments.Seed)
	loss, err := slicefinder.ZeroOneLoss(gen.Truth, gen.Pred)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := slicefinder.New(gen.Data, loss, slicefinder.Config{MaxDegree: 3})
		if err != nil {
			b.Fatal(err)
		}
		f.Find()
	}
}

// BenchmarkMinerAblation compares the four Algorithm 1 backends on two
// contrasting workloads: COMPAS (small schema) and german at s=0.1 (wide
// schema). Bitset Apriori dominates at these supports; Eclat overtakes
// it on german once the threshold drops to ~0.02 and tidsets shorten
// (run cmd/experiments or lower minSup here to see the crossover), and
// the parallel FP-growth variant only pays off with multiple cores. All
// four produce identical output (verified by the fpm property tests);
// this measures the cost of the design choice DESIGN.md calls out.
func BenchmarkMinerAblation(b *testing.B) {
	workloads := []struct {
		dataset string
		minSup  float64
	}{
		{"COMPAS", 0.05},
		{"german", 0.1},
	}
	miners := []string{"apriori", "fpgrowth", "eclat", "fpgrowth-parallel"}
	for _, wl := range workloads {
		gen, err := datagen.ByName(wl.dataset, experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		exp, err := NewClassifierExplorer(gen.Data, gen.Truth, gen.Pred)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range miners {
			b.Run(fmt.Sprintf("%s/s=%g/%s", wl.dataset, wl.minSup, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := exp.Explore(wl.minSup, WithMiner(m)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShapleyExactVsApprox quantifies the exact-vs-Monte-Carlo
// trade-off for local Shapley values on the longest frequent COMPAS
// pattern.
func BenchmarkShapleyExactVsApprox(b *testing.B) {
	res, _ := compasResult(b, 0.05)
	var longest Itemset
	for _, p := range res.Patterns {
		if len(p.Items) > len(longest) {
			longest = p.Items
		}
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := res.LocalShapley(longest, FPR); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := res.ApproxLocalShapley(longest, FPR, ApproxShapleyConfig{Permutations: 200, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSignificance measures the FDR machinery over a full COMPAS
// exploration.
func BenchmarkSignificance(b *testing.B) {
	res, _ := compasResult(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.SignificantPatterns(FPR, 0.05, ByAbsDivergence)
	}
}
