package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run("table4", "", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset characteristics") {
		t.Errorf("missing section title:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "COMPAS") {
		t.Error("table body missing")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run("table99", "", &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run("table4", dir, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "COMPAS") {
		t.Error("output file lacks table body")
	}
}
