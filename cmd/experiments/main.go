// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the synthetic stand-in datasets.
//
// Usage:
//
//	experiments -exp all            # run everything, in paper order
//	experiments -exp table2         # one experiment
//	experiments -list               # list experiment identifiers
//	experiments -exp all -out DIR   # also write one file per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e.g. table2, fig6, sec6.5) or 'all'")
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	outDir := flag.String("out", "", "directory to additionally write per-experiment output files")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := run(*exp, *outDir, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(id, outDir string, w io.Writer) error {
	var todo []experiments.Experiment
	if id == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range todo {
		if _, err := io.WriteString(w, report.Section(e.Title)); err != nil {
			return err
		}
		var sink io.Writer = w
		var f *os.File
		if outDir != "" {
			name := strings.ReplaceAll(e.ID, ".", "_") + ".txt"
			var err error
			f, err = os.Create(filepath.Join(outDir, name))
			if err != nil {
				return err
			}
			sink = io.MultiWriter(w, f)
		}
		err := e.Run(sink)
		var closeErr error
		if f != nil {
			closeErr = f.Close()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if closeErr != nil {
			return fmt.Errorf("%s: closing output file: %w", e.ID, closeErr)
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
