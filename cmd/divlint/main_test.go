package main

import (
	"os"
	"path/filepath"
	"testing"
)

// fixture returns the path of a fixture package in the analysis testdata
// mini-module.
func fixture(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name)
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// silenceStdout routes the driver's findings to /dev/null for the
// duration of the test.
func silenceStdout(t *testing.T) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		_ = devnull.Close() // test cleanup; nothing useful to do on failure
	})
}

// TestExitCodeContract pins the CI contract documented in the package
// comment: 0 on a clean package, 1 on findings, 2 on load errors.
func TestExitCodeContract(t *testing.T) {
	silenceStdout(t)
	if got := run([]string{fixture(t, "clean")}); got != 0 {
		t.Errorf("clean fixture: exit %d, want 0", got)
	}
	if got := run([]string{fixture(t, "floatcmp")}); got != 1 {
		t.Errorf("floatcmp fixture: exit %d, want 1", got)
	}
	if got := run([]string{"-json", fixture(t, "errcheck")}); got != 1 {
		t.Errorf("errcheck fixture with -json: exit %d, want 1", got)
	}
	if got := run([]string{filepath.Join(fixture(t, "clean"), "no-such-dir")}); got != 2 {
		t.Errorf("missing dir: exit %d, want 2", got)
	}
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("-list: exit %d, want 0", got)
	}
}
