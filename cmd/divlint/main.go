// Command divlint runs the project's static-analysis suite
// (internal/analysis) over packages of this module and reports findings.
//
// Usage:
//
//	divlint [-json] [-list] [packages...]
//
// Package arguments are directories; a trailing "/..." walks recursively
// ("./..." analyzes the whole module from the current directory). With no
// arguments, "./..." is assumed.
//
// Exit codes form the CI contract:
//
//	0  no findings
//	1  one or more findings (printed to stdout)
//	2  usage, load, or type-check errors (printed to stderr)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("divlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.DefaultAnalyzers() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divlint:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "divlint: no packages matched")
		return 2
	}

	moduleDir, err := findModuleRoot(dirs[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "divlint:", err)
		return 2
	}
	suite, err := analysis.NewSuite(moduleDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divlint:", err)
		return 2
	}
	diags, err := suite.RunDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divlint:", err)
		return 2
	}

	if *jsonOut {
		err = analysis.FormatJSON(os.Stdout, diags)
	} else {
		err = analysis.Format(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "divlint:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// expandPatterns turns package patterns into a deduplicated directory
// list. "dir/..." walks dir; anything else is taken as one directory.
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil {
			d = abs
		}
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			sub, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		add(p)
	}
	return dirs, nil
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
