// Command divexplorer runs pattern-divergence analysis on a CSV file
// containing discrete attributes, a ground-truth column and a prediction
// column.
//
// Example:
//
//	divexplorer -input data.csv -truth label -pred predicted \
//	    -support 0.05 -metric FPR -topk 10 -global -corrective 5
//
// Continuous columns can be discretized on the fly with
// -discretize col=4 (equal-frequency bins). A pattern's sub-lattice is
// rendered with -lattice "attr=v,attr=v".
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	divexplorer "repro"
	"repro/internal/report"
)

type config struct {
	input      string
	truthCol   string
	predCol    string
	metrics    string
	support    float64
	topK       int
	miner      string
	eps        float64
	shapley    string
	global     bool
	corrective int
	lattice    string
	threshold  float64
	discretize string
	missing    string
	alpha      float64
	export     string
	htmlOut    string
	fairness   string
	compare    string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.input, "input", "", "input CSV file (default: stdin)")
	flag.StringVar(&cfg.truthCol, "truth", "truth", "ground-truth Boolean column")
	flag.StringVar(&cfg.predCol, "pred", "pred", "prediction Boolean column")
	flag.StringVar(&cfg.metrics, "metric", "FPR", "comma-separated metrics (FPR,FNR,ER,ACC,...)")
	flag.Float64Var(&cfg.support, "support", 0.05, "minimum support threshold s")
	flag.IntVar(&cfg.topK, "topk", 10, "number of top divergent patterns to print")
	flag.StringVar(&cfg.miner, "miner", "fpgrowth", "mining algorithm: fpgrowth or apriori")
	flag.Float64Var(&cfg.eps, "eps", 0, "redundancy-pruning threshold ε (0 disables)")
	flag.StringVar(&cfg.shapley, "shapley", "", "pattern (attr=v,attr=v) to decompose; 'top' for the most divergent")
	flag.BoolVar(&cfg.global, "global", false, "print global vs individual item divergence")
	flag.IntVar(&cfg.corrective, "corrective", 0, "print the N strongest corrective items")
	flag.StringVar(&cfg.lattice, "lattice", "", "pattern whose subset lattice to render")
	flag.Float64Var(&cfg.threshold, "threshold", 0.15, "lattice divergence highlight threshold T")
	flag.StringVar(&cfg.discretize, "discretize", "", "comma-separated col=bins equal-frequency discretizations")
	flag.StringVar(&cfg.missing, "missing", "", "cell value treated as missing (records dropped)")
	flag.Float64Var(&cfg.alpha, "alpha", 0, "FDR level: report Benjamini-Hochberg significant patterns (0 disables)")
	flag.StringVar(&cfg.export, "export", "", "write the full ranked exploration of the first metric to this CSV file")
	flag.StringVar(&cfg.htmlOut, "html", "", "write a self-contained HTML report to this file")
	flag.StringVar(&cfg.fairness, "fairness", "", "print the group-fairness summary for this protected attribute")
	flag.StringVar(&cfg.compare, "compare", "", "second CSV (same schema): report per-pattern metric shifts between the two files")
	flag.Parse()

	if err := run(cfg, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divexplorer:", err)
		os.Exit(1)
	}
}

// analyzeCSV loads one CSV stream through the configured preprocessing
// (label extraction, optional discretization) and explores it.
func analyzeCSV(cfg config, in io.Reader) (*divexplorer.Result, *divexplorer.Data, error) {
	opts := divexplorer.CSVOptions{TrimSpace: true}
	if cfg.missing != "" {
		opts.MissingValues = []string{cfg.missing}
		opts.DropMissing = true
	}
	data, err := divexplorer.ReadCSV(in, opts)
	if err != nil {
		return nil, nil, err
	}
	truth, err := divexplorer.ParseBoolColumn(data, cfg.truthCol)
	if err != nil {
		return nil, nil, err
	}
	pred, err := divexplorer.ParseBoolColumn(data, cfg.predCol)
	if err != nil {
		return nil, nil, err
	}
	data, err = data.DropAttrs(cfg.truthCol, cfg.predCol)
	if err != nil {
		return nil, nil, err
	}
	if cfg.discretize != "" {
		for _, spec := range strings.Split(cfg.discretize, ",") {
			col, bins, ok := strings.Cut(spec, "=")
			if !ok {
				return nil, nil, fmt.Errorf("bad -discretize entry %q (want col=bins)", spec)
			}
			n, err := strconv.Atoi(bins)
			if err != nil {
				return nil, nil, fmt.Errorf("bad bin count in %q: %w", spec, err)
			}
			data, err = divexplorer.DiscretizeEqualFrequency(data, col, n)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	exp, err := divexplorer.NewClassifierExplorer(data, truth, pred)
	if err != nil {
		return nil, nil, err
	}
	res, err := exp.Explore(cfg.support, divexplorer.WithMiner(cfg.miner))
	if err != nil {
		return nil, nil, err
	}
	return res, data, nil
}

func run(cfg config, stdin io.Reader, w io.Writer) error {
	in := stdin
	if cfg.input != "" {
		f, err := os.Open(cfg.input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	res, data, err := analyzeCSV(cfg, in)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d rows, %d attributes, %d frequent itemsets at s=%g (miner %s)\n\n",
		data.NumRows(), data.NumAttrs(), res.NumPatterns(), cfg.support, cfg.miner); err != nil {
		return err
	}

	var metrics []divexplorer.Metric
	for _, name := range strings.Split(cfg.metrics, ",") {
		m, err := divexplorer.MetricByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		metrics = append(metrics, m)
	}

	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "overall %s = %s\n", m.Name, report.FormatFloat(res.GlobalRate(m))); err != nil {
			return err
		}
		var rows []divexplorer.Ranked
		title := fmt.Sprintf("top %d patterns by Δ_%s", cfg.topK, m.Name)
		if cfg.eps > 0 {
			rows = res.TopKPruned(m, cfg.eps, cfg.topK, divexplorer.ByDivergence)
			title += fmt.Sprintf(" (pruned at ε=%g: %d itemsets remain)",
				cfg.eps, res.PrunedCount(m, cfg.eps))
		} else {
			rows = res.TopK(m, cfg.topK, divexplorer.ByDivergence)
		}
		tbl := report.NewTable(title, "Itemset", "Sup", "Rate", "Δ", "t")
		for _, rk := range rows {
			tbl.AddRow(res.Format(rk.Items), rk.Support, rk.Rate, rk.Divergence, rk.T)
		}
		if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
			return err
		}

		if cfg.shapley != "" {
			if err := printShapley(w, res, m, cfg.shapley); err != nil {
				return err
			}
		}
		if cfg.global {
			if err := printGlobal(w, res, m); err != nil {
				return err
			}
		}
		if cfg.corrective > 0 {
			tbl := report.NewTable(fmt.Sprintf("top %d corrective items (%s)", cfg.corrective, m.Name),
				"Base", "Item", "Δ(I)", "Δ(I∪α)", "factor", "t")
			for _, c := range res.TopCorrective(m, cfg.corrective, 2.0) {
				tbl.AddRow(res.Format(c.Base), res.ItemName(c.Item), c.BaseDiv, c.ExtDiv, c.Factor, c.T)
			}
			if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
				return err
			}
		}
		if cfg.alpha > 0 {
			sig := res.SignificantPatterns(m, cfg.alpha, divexplorer.ByAbsDivergence)
			if _, err := fmt.Fprintf(w, "%d patterns significant at FDR q=%g (of %d tested); strongest:\n",
				len(sig), cfg.alpha, res.NumPatterns()); err != nil {
				return err
			}
			for i, s := range sig {
				if i == 5 {
					break
				}
				if _, err := fmt.Fprintf(w, "  %-52s Δ=%+.3f p=%.2g adj=%.2g\n",
					res.Format(s.Items), s.Divergence, s.P, s.AdjP); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if cfg.lattice != "" {
			is, err := res.Itemset(splitPattern(cfg.lattice)...)
			if err != nil {
				return err
			}
			l, err := res.Lattice(is, m, cfg.threshold)
			if err != nil {
				return err
			}
			if _, err := io.WriteString(w, l.ASCII()+"\n"); err != nil {
				return err
			}
		}
	}
	if cfg.compare != "" {
		f, err := os.Open(cfg.compare)
		if err != nil {
			return err
		}
		other, _, err2 := analyzeCSV(cfg, f)
		_ = f.Close() // read-only file; nothing to recover from a Close error

		if err2 != nil {
			return fmt.Errorf("analyzing %s: %w", cfg.compare, err2)
		}
		shifts, err := divexplorer.Compare(res, other, metrics[0])
		if err != nil {
			return err
		}
		tbl := report.NewTable(
			fmt.Sprintf("largest %s shifts vs %s (net of the global movement)", metrics[0].Name, cfg.compare),
			"Itemset", "RateA", "RateB", "NetShift", "t")
		for i, s := range shifts {
			if i == cfg.topK {
				break
			}
			tbl.AddRow(res.Format(s.Items), s.RateA, s.RateB, s.NetShift, s.T)
		}
		if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
			return err
		}
	}
	if cfg.fairness != "" {
		rep, err := res.Fairness(cfg.fairness)
		if err != nil {
			return err
		}
		tbl := report.NewTable(fmt.Sprintf("group fairness by %s", rep.AttrName),
			"Group", "Sup", "PosRate", "FPR", "FNR", "TPR", "PPV", "ACC")
		for _, g := range rep.Groups {
			tbl.AddRow(g.Value, g.Support, g.Positive, g.FPR, g.FNR, g.TPR, g.PPV, g.Accuracy)
		}
		if _, err := io.WriteString(w, tbl.String()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "gaps: parity=%s fpr=%s fnr=%s equal-opp=%s ppv=%s acc=%s\n\n",
			report.FormatFloat(rep.StatParityGap), report.FormatFloat(rep.FPRGap),
			report.FormatFloat(rep.FNRGap), report.FormatFloat(rep.EqualOppGap),
			report.FormatFloat(rep.PPVGap), report.FormatFloat(rep.AccuracyGap)); err != nil {
			return err
		}
	}
	if cfg.export != "" {
		f, err := os.Create(cfg.export)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteCSV(f, metrics[0], divexplorer.ByDivergence); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "exported %d patterns to %s\n", res.NumPatterns(), cfg.export); err != nil {
			return err
		}
	}
	if cfg.htmlOut != "" {
		html, err := res.HTMLReport(divexplorer.HTMLReportConfig{
			Metrics:  metrics,
			TopK:     cfg.topK,
			Epsilon:  cfg.eps,
			FDRLevel: cfg.alpha,
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.htmlOut, html, 0o644); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "wrote HTML report to %s (%d bytes)\n", cfg.htmlOut, len(html)); err != nil {
			return err
		}
	}
	return nil
}

func printShapley(w io.Writer, res *divexplorer.Result, m divexplorer.Metric, spec string) error {
	var is divexplorer.Itemset
	var err error
	if spec == "top" {
		top := res.TopK(m, 1, divexplorer.ByDivergence)
		if len(top) == 0 {
			return fmt.Errorf("no pattern to decompose")
		}
		is = top[0].Items
	} else {
		is, err = res.Itemset(splitPattern(spec)...)
		if err != nil {
			return err
		}
	}
	cs, err := res.LocalShapley(is, m)
	if err != nil {
		return err
	}
	chart := report.NewBarChart(fmt.Sprintf("item contributions to Δ_%s of %s", m.Name, res.Format(is)))
	for _, c := range cs {
		chart.Add(res.ItemName(c.Item), c.Value)
	}
	_, err = io.WriteString(w, chart.String()+"\n")
	return err
}

func printGlobal(w io.Writer, res *divexplorer.Result, m divexplorer.Metric) error {
	cmp := res.CompareItemDivergence(m)
	tbl := report.NewTable(fmt.Sprintf("global vs individual item divergence (%s)", m.Name),
		"Item", "global Δ^g", "individual Δ")
	for _, c := range cmp {
		ind := report.FormatFloat(c.Individual)
		if math.IsNaN(c.Individual) {
			ind = "n/a"
		}
		tbl.AddRow(res.ItemName(c.Item), report.FormatFloat(c.Global), ind)
	}
	_, err := io.WriteString(w, tbl.String()+"\n")
	return err
}

func splitPattern(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
