package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sampleCSV = `group,region,score,truth,pred
A,north,1,0,1
A,north,2,0,1
A,north,3,0,1
A,north,4,0,0
A,south,5,0,1
A,south,6,0,0
A,south,7,0,0
B,north,8,0,0
B,north,9,0,0
B,north,10,0,1
B,south,11,1,1
B,south,12,1,0
B,south,13,1,1
B,south,14,1,0
`

func baseConfig() config {
	return config{
		truthCol: "truth",
		predCol:  "pred",
		metrics:  "FPR",
		support:  0.05,
		topK:     5,
		miner:    "fpgrowth",
	}
}

func TestRunBasic(t *testing.T) {
	cfg := baseConfig()
	cfg.discretize = "score=2"
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"frequent itemsets", "overall FPR", "group=A"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Label columns must not appear as items.
	if strings.Contains(s, "truth=") || strings.Contains(s, "pred=") {
		t.Error("label columns leaked into the analysis")
	}
}

func TestRunAllAnalyses(t *testing.T) {
	cfg := baseConfig()
	cfg.metrics = "FPR,ACC"
	cfg.shapley = "top"
	cfg.global = true
	cfg.corrective = 3
	cfg.lattice = "group=A, region=north"
	cfg.discretize = "score=2"
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"item contributions", "global vs individual", "Lattice of"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunPruning(t *testing.T) {
	cfg := baseConfig()
	cfg.eps = 0.02
	cfg.discretize = "score=2"
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pruned at ε=0.02") {
		t.Errorf("pruning banner missing:\n%s", out.String())
	}
}

func TestRunApriori(t *testing.T) {
	cfg := baseConfig()
	cfg.miner = "apriori"
	cfg.discretize = "score=2"
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "miner apriori") {
		t.Error("miner banner missing")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*config)
		csv  string
	}{
		{"bad truth column", func(c *config) { c.truthCol = "ghost" }, sampleCSV},
		{"bad metric", func(c *config) { c.metrics = "XYZ" }, sampleCSV},
		{"bad miner", func(c *config) { c.miner = "carpenter" }, sampleCSV},
		{"bad discretize spec", func(c *config) { c.discretize = "score" }, sampleCSV},
		{"bad discretize bins", func(c *config) { c.discretize = "score=x" }, sampleCSV},
		{"bad lattice pattern", func(c *config) { c.lattice = "nope=1" }, sampleCSV},
		{"bad shapley pattern", func(c *config) { c.shapley = "nope=1" }, sampleCSV},
		{"empty csv", func(c *config) {}, ""},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		cfg.discretize = "score=2"
		tc.mod(&cfg)
		var out bytes.Buffer
		if err := run(cfg, strings.NewReader(tc.csv), &out); err == nil {
			t.Errorf("%s: run succeeded, want error", tc.name)
		}
	}
}

func TestRunMissingValues(t *testing.T) {
	csv := "g,truth,pred\nA,1,1\n?,0,1\nB,0,0\n"
	cfg := baseConfig()
	cfg.missing = "?"
	cfg.support = 0.1
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(csv), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 rows") {
		t.Errorf("missing-value record not dropped:\n%s", out.String())
	}
}

func TestSplitPattern(t *testing.T) {
	got := splitPattern("a=1 , b=2,c=3")
	want := []string{"a=1", "b=2", "c=3"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("splitPattern = %v", got)
		}
	}
}

func TestRunSignificanceAndExport(t *testing.T) {
	cfg := baseConfig()
	cfg.alpha = 0.1
	cfg.discretize = "score=2"
	cfg.export = t.TempDir() + "/out.csv"
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "significant at FDR") {
		t.Errorf("significance banner missing:\n%s", out.String())
	}
	data, err := os.ReadFile(cfg.export)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "itemset,") {
		t.Errorf("export file malformed: %q", string(data)[:40])
	}
}

func TestRunEclatMiner(t *testing.T) {
	cfg := baseConfig()
	cfg.miner = "eclat"
	cfg.discretize = "score=2"
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "miner eclat") {
		t.Error("eclat banner missing")
	}
}

func TestRunFairnessAndHTML(t *testing.T) {
	cfg := baseConfig()
	cfg.fairness = "group"
	cfg.htmlOut = t.TempDir() + "/report.html"
	cfg.discretize = "score=2"
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "group fairness by group") || !strings.Contains(s, "gaps:") {
		t.Errorf("fairness section missing:\n%s", s)
	}
	html, err := os.ReadFile(cfg.htmlOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<!DOCTYPE html>") {
		t.Error("HTML report malformed")
	}
	// Bad fairness attribute errors out.
	cfg.fairness = "ghost"
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err == nil {
		t.Error("unknown fairness attribute accepted")
	}
}

func TestRunCompareMode(t *testing.T) {
	// Second snapshot: group B's region-south predictions all flip
	// positive, shifting its FPR.
	shifted := strings.ReplaceAll(sampleCSV, "B,south,1,0", "B,south,1,1")
	dir := t.TempDir()
	otherPath := dir + "/other.csv"
	if err := os.WriteFile(otherPath, []byte(shifted), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.discretize = "score=2"
	cfg.compare = otherPath
	var out bytes.Buffer
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "largest FPR shifts") {
		t.Errorf("compare section missing:\n%s", out.String())
	}
	// Missing comparison file errors out.
	cfg.compare = dir + "/ghost.csv"
	if err := run(cfg, strings.NewReader(sampleCSV), &out); err == nil {
		t.Error("missing comparison file accepted")
	}
}
