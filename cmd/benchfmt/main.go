// Command benchfmt converts `go test -bench` output on stdin into the
// canonical divex-bench/v1 JSON snapshot on stdout (or -out). It is the
// formatting half of scripts/bench.sh:
//
//	go test -run=NONE -bench ... -benchmem ./... | go run ./cmd/benchfmt -date 2026-08-08 -out BENCH_2026-08-08.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	date := flag.String("date", "", "snapshot date (YYYY-MM-DD); defaults to today")
	out := flag.String("out", "", "output file; defaults to stdout")
	flag.Parse()

	d := *date
	if d == "" {
		d = time.Now().Format("2006-01-02")
	}
	rep, err := benchfmt.Parse(os.Stdin, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := benchfmt.Write(w, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchfmt: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}
}
