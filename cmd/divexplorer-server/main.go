// Command divexplorer-server runs the DivExplorer HTTP API: POST a CSV
// to /analyze and receive the divergence analysis as JSON, CSV or an
// HTML report. See internal/server for the endpoint documentation.
//
//	divexplorer-server -addr :8080
//	curl --data-binary @data.csv 'http://localhost:8080/analyze?truth=label&pred=predicted&format=html'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}
	log.Printf("divexplorer-server listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
