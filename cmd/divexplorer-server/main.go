// Command divexplorer-server runs the DivExplorer HTTP API: POST a CSV
// to /analyze for a synchronous divergence analysis, use the job API
// (POST /datasets, POST /jobs, GET /jobs/{id}) to mine asynchronously on
// a bounded worker pool, or POST /explore for budgeted anytime queries
// and lattice navigation over a registered dataset. See internal/server
// for endpoint documentation.
//
// With -store-dir the job engine is durable: every lifecycle transition
// is written ahead to a JSON-lines log in that directory, replayed on
// the next boot, and streamed as partial-result snapshots while mining.
// With -spill-dir the dataset registry gains a disk tier: datasets
// evicted by the memory budget are written to checksummed spill files
// and reloaded (verified against their content hash) on the next use,
// so a restart plus -store-dir serves full pre-crash results without
// re-uploads.
//
// With -node-id and -peers the server joins a fault-tolerant cluster:
// datasets and jobs are placed on a consistent-hash ring (-replication
// owners per content hash), submits on a non-owner are forwarded to an
// owner with hedged retries, accepted work replicates to the other
// owners, and a dead node's jobs are adopted by a surviving replica
// (phi-accrual failure detection over gossip heartbeats). With
// -tenant-quotas, per-tenant admission control (X-Tenant header) gates
// POST /jobs with quota/rate 429s and replaces the FIFO job queue with
// weighted fair queueing. See DESIGN.md §16.
//
//	divexplorer-server -addr :8080 -workers 4 -job-timeout 5m
//	divexplorer-server -store-dir /var/lib/divexplorer -snapshot-every 2s
//	divexplorer-server -store-dir /var/lib/divexplorer -spill-dir /var/lib/divexplorer/spill -spill-budget-bytes 1073741824
//	divexplorer-server -addr :8081 -node-id n1 -peers 'n1=http://h1:8081,n2=http://h2:8081' -replication 2 -tenant-quotas '*:rate=50;acme:weight=3'
//	curl --data-binary @data.csv 'http://localhost:8080/analyze?truth=label&pred=predicted&format=html'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/monitor"
	"repro/internal/registry"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "max queued jobs before submissions get HTTP 429")
		datasetCache = flag.Int64("dataset-cache-bytes", server.DefaultDatasetCacheBytes,
			"dataset registry budget in bytes (0 = unlimited)")
		registryShards = flag.Int("registry-shards", registry.DefaultShards,
			"lock stripes in the dataset registry (1 = single-lock store)")
		resultCache = flag.Int("result-cache", 128, "result cache capacity in entries")
		jobTimeout  = flag.Duration("job-timeout", 5*time.Minute, "per-job deadline (0 = none)")
		maxBody     = flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes,
			"max request body size in bytes; larger uploads get HTTP 413")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long shutdown waits for queued jobs before canceling them")
		storeDir = flag.String("store-dir", "",
			"directory for the durable job store; empty disables persistence")
		snapshotEvery = flag.Duration("snapshot-every", 2*time.Second,
			"min interval between persisted partial-result snapshots (0 = every update)")
		spillDir = flag.String("spill-dir", "",
			"directory for the dataset disk-spill tier; empty evicts to nowhere (datasets are lost on eviction)")
		spillBudget = flag.Int64("spill-budget-bytes", 0,
			"disk byte budget for spilled datasets (0 = unlimited); oldest spill files are evicted first")
		exploreCache = flag.Int("explore-cache", 64,
			"anytime-explore outcome cache capacity in entries (POST /explore)")
		exploreSessions = flag.Int("explore-sessions", 16,
			"max resident lattice-navigation sessions (one per dataset and label-column pair)")
		sigCache = flag.Int("sig-cache", 64,
			"significance outcome cache capacity in entries (POST /significance)")
		maxPermutations = flag.Int("max-permutations", 100000,
			"max label permutations a significance request may ask for")
		monitorQueue = flag.Int("monitor-queue", 64,
			"per-monitor ingest buffer in batches before ingest gets HTTP 429")
		maxMonitors = flag.Int("max-monitors", 32,
			"max concurrently live streaming monitors")
		nodeID = flag.String("node-id", "",
			"this node's cluster member ID (required with -peers)")
		peersFlag = flag.String("peers", "",
			"cluster members as comma-separated id=http://host:port pairs; the entry matching "+
				"-node-id, if present, is skipped, so one value works for every node. Empty runs single-node")
		replication = flag.Int("replication", cluster.DefaultReplication,
			"how many nodes own each dataset (clamped to the cluster size)")
		tenantQuotas = flag.String("tenant-quotas", "",
			"per-tenant admission limits, e.g. '*:rate=10;alpha:weight=3,rate=50,burst=100;beta:jobs=2,bytes=1048576' "+
				"(keys: weight, rate, burst, jobs, bytes; '*' sets the defaults). Empty disables admission control")
	)
	flag.Parse()

	reg := registry.NewSharded(*datasetCache, *registryShards)
	if *spillDir != "" {
		// Attach the disk tier before any traffic: in-memory eviction then
		// spills the dataset to a checksummed file instead of dropping it,
		// and registry misses fall through to a verified disk load.
		sp, err := registry.OpenSpill(*spillDir, *spillBudget, nil)
		if err != nil {
			log.Fatalf("opening spill dir %s: %v", *spillDir, err)
		}
		reg.AttachSpill(sp, server.CSVOptions())
		st := sp.Stats()
		log.Printf("dataset spill tier %s attached (%d files, %d bytes resident)",
			*spillDir, st.Files, st.Bytes)
	}
	// Per-tenant admission: quota/rate gate on POST /jobs plus weighted
	// fair queueing in place of the engine's FIFO.
	var ctrl *admission.Controller
	var queue jobs.Queue
	if *tenantQuotas != "" {
		defaults, perTenant, err := admission.ParseLimits(*tenantQuotas)
		if err != nil {
			log.Fatalf("parsing -tenant-quotas: %v", err)
		}
		ctrl = admission.NewController(defaults, perTenant, nil)
		queue = server.NewFairJobQueue(*queueDepth, ctrl)
		log.Printf("admission control on (%d tenant overrides, weighted fair queueing)", len(perTenant))
	}
	engine, err := jobs.New(jobs.Config{
		Registry:                 reg,
		Workers:                  *workers,
		Queue:                    queue,
		QueueDepth:               *queueDepth,
		ResultCacheEntries:       *resultCache,
		DefaultTimeout:           *jobTimeout,
		SnapshotEvery:            *snapshotEvery,
		ExploreCacheEntries:      *exploreCache,
		ExploreSessions:          *exploreSessions,
		SignificanceCacheEntries: *sigCache,
		MaxPermutations:          *maxPermutations,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *storeDir != "" {
		// Replay the write-ahead log before serving traffic: completed
		// results come back as durable summaries, interrupted jobs are
		// re-marked failed, and the store stays attached for write-through.
		n, err := engine.Recover(*storeDir)
		if err != nil {
			log.Fatalf("recovering job store %s: %v", *storeDir, err)
		}
		log.Printf("job store %s attached (%d jobs recovered)", *storeDir, n)
	}
	monitors := monitor.NewManager(monitor.Config{
		QueueDepth:  *monitorQueue,
		MaxMonitors: *maxMonitors,
		Store:       engine.Store(), // nil without -store-dir: monitors stay ephemeral
	})
	if n, err := monitors.Recover(); err != nil {
		log.Printf("monitor recovery: %v (%d monitors restored)", err, n)
	} else if n > 0 {
		log.Printf("%d streaming monitors recovered (windows restart empty)", n)
	}
	api, err := server.New(server.Options{
		MaxBodyBytes: *maxBody,
		Registry:     reg,
		Engine:       engine,
		Monitors:     monitors,
		Admission:    ctrl,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Cluster tier: consistent-hash placement over the member set, with
	// this server as the node's local execution side.
	var node *cluster.Node
	if *peersFlag != "" {
		if *nodeID == "" {
			log.Fatal("-peers requires -node-id")
		}
		self := cluster.NodeID(*nodeID)
		urls := make(map[cluster.NodeID]string)
		var peerIDs []cluster.NodeID
		for _, pair := range strings.Split(*peersFlag, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			id, url, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("bad -peers entry %q (want id=http://host:port)", pair)
			}
			if cluster.NodeID(id) == self {
				continue
			}
			urls[cluster.NodeID(id)] = url
			peerIDs = append(peerIDs, cluster.NodeID(id))
		}
		node, err = cluster.NewNode(cluster.Options{
			Self:              self,
			Peers:             peerIDs,
			ReplicationFactor: *replication,
			HeartbeatEvery:    cluster.DefaultHeartbeatEvery,
			Transport:         cluster.NewHTTPTransport(urls, nil),
			Local:             api.ClusterLocal(),
			Logf:              log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		api.AttachCluster(node)
		node.Start()
		log.Printf("cluster node %s up (%d members, replication %d)",
			self, len(peerIDs)+1, node.Replication())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("divexplorer-server listening on %s (workers=%d queue=%d)",
		*addr, engine.Stats().Workers, *queueDepth)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the job
	// queue so accepted work still completes (up to the drain timeout).
	log.Printf("shutting down: draining jobs (timeout %s)", *drainTimeout)
	if node != nil {
		node.Close() // stop gossiping before the engine drains
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := api.Close(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("engine shutdown: %v", err)
	}
	log.Print("bye")
}
