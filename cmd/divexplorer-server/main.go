// Command divexplorer-server runs the DivExplorer HTTP API: POST a CSV
// to /analyze for a synchronous divergence analysis, use the job API
// (POST /datasets, POST /jobs, GET /jobs/{id}) to mine asynchronously on
// a bounded worker pool, or POST /explore for budgeted anytime queries
// and lattice navigation over a registered dataset. See internal/server
// for endpoint documentation.
//
// With -store-dir the job engine is durable: every lifecycle transition
// is written ahead to a JSON-lines log in that directory, replayed on
// the next boot, and streamed as partial-result snapshots while mining.
// With -spill-dir the dataset registry gains a disk tier: datasets
// evicted by the memory budget are written to checksummed spill files
// and reloaded (verified against their content hash) on the next use,
// so a restart plus -store-dir serves full pre-crash results without
// re-uploads.
//
//	divexplorer-server -addr :8080 -workers 4 -job-timeout 5m
//	divexplorer-server -store-dir /var/lib/divexplorer -snapshot-every 2s
//	divexplorer-server -store-dir /var/lib/divexplorer -spill-dir /var/lib/divexplorer/spill -spill-budget-bytes 1073741824
//	curl --data-binary @data.csv 'http://localhost:8080/analyze?truth=label&pred=predicted&format=html'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/monitor"
	"repro/internal/registry"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "max queued jobs before submissions get HTTP 429")
		datasetCache = flag.Int64("dataset-cache-bytes", server.DefaultDatasetCacheBytes,
			"dataset registry budget in bytes (0 = unlimited)")
		registryShards = flag.Int("registry-shards", registry.DefaultShards,
			"lock stripes in the dataset registry (1 = single-lock store)")
		resultCache = flag.Int("result-cache", 128, "result cache capacity in entries")
		jobTimeout  = flag.Duration("job-timeout", 5*time.Minute, "per-job deadline (0 = none)")
		maxBody     = flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes,
			"max request body size in bytes; larger uploads get HTTP 413")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long shutdown waits for queued jobs before canceling them")
		storeDir = flag.String("store-dir", "",
			"directory for the durable job store; empty disables persistence")
		snapshotEvery = flag.Duration("snapshot-every", 2*time.Second,
			"min interval between persisted partial-result snapshots (0 = every update)")
		spillDir = flag.String("spill-dir", "",
			"directory for the dataset disk-spill tier; empty evicts to nowhere (datasets are lost on eviction)")
		spillBudget = flag.Int64("spill-budget-bytes", 0,
			"disk byte budget for spilled datasets (0 = unlimited); oldest spill files are evicted first")
		exploreCache = flag.Int("explore-cache", 64,
			"anytime-explore outcome cache capacity in entries (POST /explore)")
		exploreSessions = flag.Int("explore-sessions", 16,
			"max resident lattice-navigation sessions (one per dataset and label-column pair)")
		sigCache = flag.Int("sig-cache", 64,
			"significance outcome cache capacity in entries (POST /significance)")
		maxPermutations = flag.Int("max-permutations", 100000,
			"max label permutations a significance request may ask for")
		monitorQueue = flag.Int("monitor-queue", 64,
			"per-monitor ingest buffer in batches before ingest gets HTTP 429")
		maxMonitors = flag.Int("max-monitors", 32,
			"max concurrently live streaming monitors")
	)
	flag.Parse()

	reg := registry.NewSharded(*datasetCache, *registryShards)
	if *spillDir != "" {
		// Attach the disk tier before any traffic: in-memory eviction then
		// spills the dataset to a checksummed file instead of dropping it,
		// and registry misses fall through to a verified disk load.
		sp, err := registry.OpenSpill(*spillDir, *spillBudget, nil)
		if err != nil {
			log.Fatalf("opening spill dir %s: %v", *spillDir, err)
		}
		reg.AttachSpill(sp, server.CSVOptions())
		st := sp.Stats()
		log.Printf("dataset spill tier %s attached (%d files, %d bytes resident)",
			*spillDir, st.Files, st.Bytes)
	}
	engine, err := jobs.New(jobs.Config{
		Registry:                 reg,
		Workers:                  *workers,
		QueueDepth:               *queueDepth,
		ResultCacheEntries:       *resultCache,
		DefaultTimeout:           *jobTimeout,
		SnapshotEvery:            *snapshotEvery,
		ExploreCacheEntries:      *exploreCache,
		ExploreSessions:          *exploreSessions,
		SignificanceCacheEntries: *sigCache,
		MaxPermutations:          *maxPermutations,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *storeDir != "" {
		// Replay the write-ahead log before serving traffic: completed
		// results come back as durable summaries, interrupted jobs are
		// re-marked failed, and the store stays attached for write-through.
		n, err := engine.Recover(*storeDir)
		if err != nil {
			log.Fatalf("recovering job store %s: %v", *storeDir, err)
		}
		log.Printf("job store %s attached (%d jobs recovered)", *storeDir, n)
	}
	monitors := monitor.NewManager(monitor.Config{
		QueueDepth:  *monitorQueue,
		MaxMonitors: *maxMonitors,
		Store:       engine.Store(), // nil without -store-dir: monitors stay ephemeral
	})
	if n, err := monitors.Recover(); err != nil {
		log.Printf("monitor recovery: %v (%d monitors restored)", err, n)
	} else if n > 0 {
		log.Printf("%d streaming monitors recovered (windows restart empty)", n)
	}
	api, err := server.New(server.Options{
		MaxBodyBytes: *maxBody,
		Registry:     reg,
		Engine:       engine,
		Monitors:     monitors,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("divexplorer-server listening on %s (workers=%d queue=%d)",
		*addr, engine.Stats().Workers, *queueDepth)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the job
	// queue so accepted work still completes (up to the drain timeout).
	log.Printf("shutting down: draining jobs (timeout %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := api.Close(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("engine shutdown: %v", err)
	}
	log.Print("bye")
}
