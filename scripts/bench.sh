#!/usr/bin/env bash
# bench.sh — regenerate the committed perf-trajectory snapshot.
#
# Runs the perf-critical benchmark families with -benchmem —
#
#   BenchmarkMineFPGrowthCompas          the sequential conditional-tree
#                                        mine (the hotalloc-guarded path)
#   BenchmarkRegistryRegister            fresh vs dedup registration
#   BenchmarkRegistryGetDiskFallthrough  memory hit vs spill reload
#   BenchmarkMonitorIngest               streaming ingest end to end
#                                        (parse, queue, window fold)
#   BenchmarkWindowAdvance               the O(bucket) advance across
#                                        window lengths — flat ns/op is
#                                        the design's acceptance bar
#   BenchmarkAnytimeTopK                 the anytime top-K explore:
#                                        exhaustive vs. pattern-budgeted
#                                        vs. row-sampled on one dataset
#   BenchmarkLatticeExpand               one navigation step, cold
#                                        (narrowed scan) vs. warm
#                                        (conditional-tally cache hit)
#   BenchmarkPermutationPass             one label permutation: seeded
#                                        shuffle plus the full max-T
#                                        statistic sweep over the cover
#                                        index (0 allocs/op is the bar)
#   BenchmarkWYAdjust                    the step-down adjustment fold,
#                                        counts to monotone p-values
#   BenchmarkRingLookup                  one consistent-hash owner lookup
#                                        across cluster sizes — the cost
#                                        every clustered submit pays
#   BenchmarkForwardJob                  a full SubmitJob forward over
#                                        the in-memory transport (hedge
#                                        machinery included, no hedge
#                                        fired)
#
# — and writes them as BENCH_<date>.json (schema divex-bench/v1, see
# internal/benchfmt) in the repository root. Committing the file after a
# perf-relevant change extends the trajectory README.md plots; an
# unchanged workload regenerates byte-identical JSON apart from the
# measured numbers.
#
# Environment:
#   BENCH_DATE    override the snapshot date (YYYY-MM-DD; default today)
#   BENCH_TIME    override -benchtime (default 1s)
#
# verify.sh runs this as an opt-in tier when DIVEX_BENCH=1 is exported;
# the default gate only smoke-runs benchmarks for one iteration.
set -euo pipefail
cd "$(dirname "$0")/.."

date="${BENCH_DATE:-$(date +%F)}"
benchtime="${BENCH_TIME:-1s}"
out="BENCH_${date}.json"

echo "==> benchmarks (-benchtime ${benchtime}, -benchmem)"
{
    go test -run=NONE -benchmem -benchtime="${benchtime}" \
        -bench '^BenchmarkMineFPGrowthCompas$' .
    go test -run=NONE -benchmem -benchtime="${benchtime}" \
        -bench '^(BenchmarkRegistryRegister|BenchmarkRegistryGetDiskFallthrough)$' ./internal/registry
    go test -run=NONE -benchmem -benchtime="${benchtime}" \
        -bench '^(BenchmarkMonitorIngest|BenchmarkWindowAdvance)$' ./internal/monitor
    go test -run=NONE -benchmem -benchtime="${benchtime}" \
        -bench '^BenchmarkAnytimeTopK$' ./internal/core
    go test -run=NONE -benchmem -benchtime="${benchtime}" \
        -bench '^BenchmarkLatticeExpand$' ./internal/lattice
    go test -run=NONE -benchmem -benchtime="${benchtime}" \
        -bench '^(BenchmarkPermutationPass|BenchmarkWYAdjust)$' ./internal/permtest
    go test -run=NONE -benchmem -benchtime="${benchtime}" \
        -bench '^(BenchmarkRingLookup|BenchmarkForwardJob)$' ./internal/cluster
} | tee /dev/stderr | go run ./cmd/benchfmt -date "${date}" -out "${out}"

echo "bench: snapshot written to ${out}"
