#!/usr/bin/env bash
# verify.sh — the full correctness gate for this repository.
#
# Runs, in order:
#   1. go build ./...              compile everything
#   2. go vet ./...                the stock vet analyzers
#   3. go run ./cmd/divlint ./...  the project-invariant suite
#                                  (floatcmp, errcheck, lockcopy,
#                                  maporder, libprint, goleak, errwrap,
#                                  hotalloc, ctxflow, atomicmix, plus
#                                  the stale-suppression audit; see
#                                  DESIGN.md §8)
#   4. go test -race ./...         all tests under the race detector;
#                                  the Parallel-vs-FPGrowth stress test
#                                  is this tier's primary target
#   5. registry-race tier          the concurrent service subsystems
#                                  (registry, jobs, server) twice more
#                                  under -race: the sharded-registry
#                                  property tests, rehydration
#                                  single-flight and submit/cancel/
#                                  shutdown interleavings are
#                                  timing-sensitive, so extra runs buy
#                                  extra schedules
#   6. fault-injection tier        the disk-facing subsystems (faultfs
#                                  injector, registry spill tier, WAL
#                                  chaos tests, spill e2e) once more
#                                  under -race with the fault schedule
#                                  seeded via DIVEX_FAULT_SEED
#                                  (default 1; export a different
#                                  positive integer to explore other
#                                  deterministic schedules — the seed
#                                  is echoed so any failure reproduces)
#   6b. monitor-race tier          the streaming monitor subsystem twice
#                                  more under -race: concurrent ingest
#                                  vs. window advance vs. delete, plus
#                                  the drift-to-SSE e2e, are the
#                                  timing-sensitive paths
#   6c. anytime-race tier          the anytime exploration tier twice
#                                  more under -race: budgeted mining
#                                  (deadline cuts vs. warm-state reuse),
#                                  lattice-navigation cache churn and
#                                  the /explore endpoint are the
#                                  timing-sensitive paths, and the
#                                  byte-identity differential must hold
#                                  under the race detector too
#   6d. significance-race tier     the permutation-testing engine twice
#                                  more under -race: the bounded worker
#                                  pool's atomic permutation claims and
#                                  buffer merges must stay deterministic
#                                  (same seed, any worker count) under
#                                  the race detector, along with the
#                                  /significance endpoint and job route
#   6e. cluster-race tier          the fault-tolerant cluster tier twice
#                                  more under -race: the placement ring,
#                                  phi-accrual gossip, hedged forwards
#                                  and replica streaming, plus the
#                                  seeded kill/partition/slow-walk chaos
#                                  tests over full servers (no job lost,
#                                  none double-completed on live nodes)
#   6f. admission tier             per-tenant quotas, token-bucket rate
#                                  limits (429 + Retry-After) and the
#                                  weighted-fair-queue isolation test
#                                  under -race
#   7. fuzz smoke                  each native fuzz target for 10s of
#                                  fresh input generation on top of the
#                                  checked-in seed corpus (one target
#                                  per package per run, as go test
#                                  requires)
#   8. coverage summary            per-package statement coverage for
#                                  the durability layer (internal/jobs)
#                                  and the miners the differential
#                                  suite guards (internal/fpm) —
#                                  informational, printed not gated
#   9. benchmark smoke             every benchmark once, so a bench that
#                                  panics or no longer compiles fails
#                                  the gate, not the next perf session
#  10. perf snapshot (opt-in)      with DIVEX_BENCH=1, scripts/bench.sh
#                                  re-measures the mine / register /
#                                  disk-fallthrough benchmarks and
#                                  rewrites BENCH_<date>.json — the
#                                  perf-trajectory artifact. Off by
#                                  default: real measurements need a
#                                  quiet machine, not a CI neighbor
#
# Exits non-zero on the first failing step. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> divlint ./..."
go run ./cmd/divlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> registry-race tier (sharded registry + durable jobs, -count=2)"
go test -race -count=2 ./internal/registry/... ./internal/jobs/... ./internal/server/...

echo "==> fault-injection tier (seed ${DIVEX_FAULT_SEED:-1})"
DIVEX_FAULT_SEED="${DIVEX_FAULT_SEED:-1}" \
    go test -race -run 'Chaos|Spill|Fault|Injector|Retry|Transient|OSPassthrough|RemoveIsTotal|DeleteDatasetPurges' \
    ./internal/faultfs ./internal/registry ./internal/jobs ./internal/server

echo "==> monitor-race tier (streaming ingest/advance/delete, -count=2)"
go test -race -count=2 ./internal/monitor/...
go test -race -run 'Monitor|Statsz' ./internal/server

echo "==> anytime-race tier (budgeted mining + lattice navigation + /explore, -count=2)"
go test -race -count=2 -run 'Anytime|SampleRows' ./internal/fpm ./internal/core
go test -race -count=2 ./internal/lattice/...
go test -race -count=2 -run 'Explore|ParseExploreBody' ./internal/jobs ./internal/server

echo "==> significance-race tier (permutation engine + WY control + /significance, -count=2)"
go test -race -count=2 ./internal/permtest/...
go test -race -count=2 -run 'Permutation|WY|PermFDR|CoverIndex|MaxEnt|Significance' \
    ./internal/fpm ./internal/core ./internal/jobs ./internal/server

echo "==> cluster-race tier (ring + gossip + chaos failover, -count=2)"
go test -race -count=2 ./internal/cluster/...
go test -race -count=2 -run 'Cluster' ./internal/server

echo "==> admission tier (tenant quotas + weighted fair queueing, -count=2)"
go test -race -count=2 ./internal/admission/...
go test -race -run 'Admission|FairQueue' ./internal/server

echo "==> fuzz smoke (10s per target)"
go test -run=NONE -fuzz='^FuzzParseCSV$' -fuzztime=10s ./internal/dataset
go test -run=NONE -fuzz='^FuzzDiscretize$' -fuzztime=10s ./internal/discretize
go test -run=NONE -fuzz='^FuzzParseEvent$' -fuzztime=10s ./internal/monitor
go test -run=NONE -fuzz='^FuzzExploreRequest$' -fuzztime=10s ./internal/server
go test -run=NONE -fuzz='^FuzzSignificanceRequest$' -fuzztime=10s ./internal/server

echo "==> coverage summary (jobs, fpm)"
go test -cover ./internal/jobs ./internal/fpm | awk '{print "    " $0}'

echo "==> benchmark smoke (one iteration each)"
go test -run=NONE -bench=. -benchtime=1x ./...

if [[ -n "${DIVEX_BENCH:-}" ]]; then
    echo "==> perf snapshot (DIVEX_BENCH set)"
    ./scripts/bench.sh
fi

echo "verify: all gates passed"
