#!/usr/bin/env bash
# verify.sh — the full correctness gate for this repository.
#
# Runs, in order:
#   1. go build ./...              compile everything
#   2. go vet ./...                the stock vet analyzers
#   3. go run ./cmd/divlint ./...  the project-invariant suite
#                                  (floatcmp, errcheck, lockcopy,
#                                  maporder, libprint; see DESIGN.md)
#   4. go test -race ./...         all tests under the race detector;
#                                  the Parallel-vs-FPGrowth stress test
#                                  is this tier's primary target
#
# Exits non-zero on the first failing step. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> divlint ./..."
go run ./cmd/divlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: all gates passed"
