#!/usr/bin/env bash
# verify.sh — the full correctness gate for this repository.
#
# Runs, in order:
#   1. go build ./...              compile everything
#   2. go vet ./...                the stock vet analyzers
#   3. go run ./cmd/divlint ./...  the project-invariant suite
#                                  (floatcmp, errcheck, lockcopy,
#                                  maporder, libprint, goleak; see
#                                  DESIGN.md)
#   4. go test -race ./...         all tests under the race detector;
#                                  the Parallel-vs-FPGrowth stress test
#                                  is this tier's primary target
#   5. go test -race -count=2 …    the concurrent service subsystems
#                                  (jobs, registry, server) twice more:
#                                  submit/cancel/shutdown interleavings
#                                  are timing-sensitive, so extra runs
#                                  buy extra schedules
#   6. benchmark smoke             every benchmark once, so a bench that
#                                  panics or no longer compiles fails
#                                  the gate, not the next perf session
#
# Exits non-zero on the first failing step. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> divlint ./..."
go run ./cmd/divlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race -count=2 (service subsystems)"
go test -race -count=2 ./internal/jobs ./internal/registry ./internal/server

echo "==> benchmark smoke (one iteration each)"
go test -run=NONE -bench=. -benchtime=1x ./...

echo "verify: all gates passed"
