package divexplorer

import (
	"fmt"
	"strings"
	"testing"
)

// publicFixture builds a small dataset through the public API only.
func publicFixture(t testing.TB) (*Data, []bool, []bool) {
	t.Helper()
	b := NewDataBuilder("group", "region")
	var truth, pred []bool
	add := func(g, r string, tv, pv bool, n int) {
		for i := 0; i < n; i++ {
			if err := b.Add(g, r); err != nil {
				t.Fatal(err)
			}
			truth = append(truth, tv)
			pred = append(pred, pv)
		}
	}
	add("A", "north", false, true, 8) // FP cluster in group A
	add("A", "north", false, false, 2)
	add("A", "south", false, true, 3)
	add("A", "south", false, false, 7)
	add("B", "north", false, true, 1)
	add("B", "north", false, false, 9)
	add("B", "south", true, true, 6)
	add("B", "south", true, false, 4)
	b.SortDomains()
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return d, truth, pred
}

func TestPublicPipeline(t *testing.T) {
	d, truth, pred := publicFixture(t)
	exp, err := NewClassifierExplorer(d, truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Explore(0.05)
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopK(FPR, 3, ByDivergence)
	if len(top) == 0 {
		t.Fatal("no patterns")
	}
	if !strings.Contains(res.Format(top[0].Items), "group=A") {
		t.Errorf("top FPR pattern = %s, want to involve group=A", res.Format(top[0].Items))
	}
	// Shapley through the public surface.
	is, err := res.Itemset("group=A", "region=north")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := res.LocalShapley(is, FPR)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range cs {
		sum += c.Value
	}
	div, ok := res.Divergence(is, FPR)
	if !ok {
		t.Fatal("itemset infrequent")
	}
	if diff := sum - div; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Shapley efficiency violated: %v vs %v", sum, div)
	}
	// Global divergence and corrective items run.
	if g := res.GlobalDivergence(FPR); len(g) == 0 {
		t.Error("empty global divergence")
	}
	_ = res.CorrectiveItems(FPR)
	// Lattice.
	l, err := res.Lattice(is, FPR, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(l.ASCII(), "group=A") {
		t.Error("lattice rendering missing items")
	}
}

func TestExploreMinerOption(t *testing.T) {
	d, truth, pred := publicFixture(t)
	exp, err := NewClassifierExplorer(d, truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := exp.Explore(0.05, WithMiner("apriori"))
	if err != nil {
		t.Fatal(err)
	}
	fg, err := exp.Explore(0.05, WithMiner("fpgrowth"))
	if err != nil {
		t.Fatal(err)
	}
	if ap.NumPatterns() != fg.NumPatterns() {
		t.Errorf("miners disagree: %d vs %d", ap.NumPatterns(), fg.NumPatterns())
	}
	ec, err := exp.Explore(0.05, WithMiner("eclat"))
	if err != nil {
		t.Fatal(err)
	}
	par, err := exp.Explore(0.05, WithMiner("fpgrowth-parallel"))
	if err != nil {
		t.Fatal(err)
	}
	if ec.NumPatterns() != fg.NumPatterns() || par.NumPatterns() != fg.NumPatterns() {
		t.Error("eclat/parallel disagree with fpgrowth")
	}
	if _, err := exp.Explore(0.05, WithMiner("carpenter")); err == nil {
		t.Error("unknown miner accepted")
	}
}

func TestOutcomeExplorer(t *testing.T) {
	d, truth, _ := publicFixture(t)
	// Outcome = ground truth positive rate: OutcomeT where truth, else F.
	exp, err := NewOutcomeExplorer(d, func(row int) Outcome {
		if truth[row] {
			return OutcomeTrue
		}
		return OutcomeFalse
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Explore(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// group=B region=south is the only positive region.
	is, err := res.Itemset("group=B", "region=south")
	if err != nil {
		t.Fatal(err)
	}
	div, ok := res.Divergence(is, OutcomeRate)
	if !ok || div <= 0 {
		t.Errorf("positive-rate divergence = %v, %v; want positive", div, ok)
	}
	// Invalid outcome function values are rejected.
	if _, err := NewOutcomeExplorer(d, func(int) Outcome { return 9 }); err == nil {
		t.Error("invalid outcome value accepted")
	}
	if _, err := NewOutcomeExplorer(d, nil); err == nil {
		t.Error("nil outcome function accepted")
	}
}

func TestReadCSVAndBoolColumn(t *testing.T) {
	in := "x,label,pred\na,1,0\nb,0,1\na,true,false\n"
	d, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ParseBoolColumn(d, "label")
	if err != nil {
		t.Fatal(err)
	}
	if !truth[0] || truth[1] || !truth[2] {
		t.Errorf("truth = %v", truth)
	}
	if _, err := ParseBoolColumn(d, "x"); err == nil {
		t.Error("non-Boolean column parsed")
	}
	if _, err := ParseBoolColumn(d, "ghost"); err == nil {
		t.Error("unknown column parsed")
	}
}

func TestDiscretizeHelpers(t *testing.T) {
	in := "v,cat\n1,a\n2,a\n3,b\n4,b\n5,a\n6,b\n"
	d, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ew, err := DiscretizeEqualWidth(d, "v", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ew.Attrs[ew.AttrIndex("v")].Cardinality(); got != 2 {
		t.Errorf("equal-width bins = %d, want 2", got)
	}
	ef, err := DiscretizeEqualFrequency(d, "v", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := ef.Attrs[ef.AttrIndex("v")].Cardinality(); got < 2 {
		t.Errorf("equal-frequency bins = %d, want >= 2", got)
	}
	cp, err := DiscretizeCutPoints(d, "v", []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.Attrs[cp.AttrIndex("v")].Cardinality(); got != 2 {
		t.Errorf("cut-point bins = %d, want 2", got)
	}
	// Errors surface cleanly.
	if _, err := DiscretizeEqualWidth(d, "cat", 2); err == nil {
		t.Error("non-numeric column discretized")
	}
	if _, err := DiscretizeEqualWidth(d, "ghost", 2); err == nil {
		t.Error("unknown column discretized")
	}
}

func TestMetricsHelpers(t *testing.T) {
	if len(Metrics()) < 9 {
		t.Errorf("Metrics() lists %d metrics", len(Metrics()))
	}
	m, err := MetricByName("ACC")
	if err != nil || m.Name != "ACC" {
		t.Errorf("MetricByName(ACC) = %v, %v", m, err)
	}
}

// The embedded core analyses are reachable through the public Result:
// FDR-significant patterns, Bayesian credible ranking, Monte Carlo
// Shapley, and CSV export.
func TestPublicAdvancedAnalyses(t *testing.T) {
	d, truth, pred := publicFixture(t)
	exp, err := NewClassifierExplorer(d, truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Explore(0.05)
	if err != nil {
		t.Fatal(err)
	}
	sig := res.SignificantPatterns(FPR, 0.1, ByAbsDivergence)
	for _, s := range sig {
		if s.AdjP < s.P-1e-15 {
			t.Error("adjusted p below raw p")
		}
	}
	cred := res.TopKCredible(FPR, 3, 0.95)
	if len(cred) == 0 {
		t.Fatal("no credible ranking")
	}
	if !(cred[0].RateLo <= cred[0].Rate && cred[0].Rate <= cred[0].RateHi) {
		t.Error("credible interval malformed")
	}
	is, err := res.Itemset("group=A", "region=north")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := res.LocalShapley(is, FPR)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := res.ApproxLocalShapley(is, FPR, ApproxShapleyConfig{Permutations: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		diff := exact[i].Value - approx[i].Value
		if diff < -0.03 || diff > 0.03 {
			t.Errorf("approx Shapley off: %v vs %v", approx[i].Value, exact[i].Value)
		}
	}
	var buf strings.Builder
	if err := res.WriteCSV(&buf, FPR, ByDivergence); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "itemset,") {
		t.Error("CSV export malformed")
	}
}

func TestDiscretizeMDLPPublic(t *testing.T) {
	b := NewDataBuilder("v", "other")
	var labels []bool
	for i := 0; i < 200; i++ {
		x := float64(i)
		if err := b.Add(fmt.Sprintf("%g", x), "c"); err != nil {
			t.Fatal(err)
		}
		labels = append(labels, x >= 100)
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DiscretizeMDLP(d, "v", labels)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Attrs[out.AttrIndex("v")].Cardinality(); got != 2 {
		t.Errorf("MDLP bins = %d, want 2 for a single threshold", got)
	}
	if _, err := DiscretizeMDLP(d, "v", labels[:5]); err == nil {
		t.Error("mismatched labels accepted")
	}
}
